//! Per-CPU softirq state.
//!
//! Tai Chi's vCPU scheduler performs its pCPU↔vCPU context switches
//! from a dedicated softirq handler (§4.1): raising the softirq on an
//! idle DP CPU is how the scheduler "borrows" that CPU without touching
//! the thread scheduler. This module models the pending-softirq bitmap;
//! handler execution costs live in the Tai Chi scheduler's cost model.

use taichi_hw::CpuId;
use taichi_sim::{Counter, FaultInjector, TraceKind, Tracer};

/// Softirq categories (a subset of Linux's, plus Tai Chi's own).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SoftirqKind {
    /// Timer softirq.
    Timer = 0,
    /// Network RX softirq.
    NetRx = 1,
    /// The dedicated Tai Chi vCPU-switch softirq.
    TaiChiVcpu = 2,
}

impl SoftirqKind {
    /// Stable snake_case name (used by the trace layer).
    pub fn name(self) -> &'static str {
        match self {
            SoftirqKind::Timer => "timer",
            SoftirqKind::NetRx => "net_rx",
            SoftirqKind::TaiChiVcpu => "taichi_vcpu",
        }
    }
}

/// Per-CPU pending softirq bitmaps.
#[derive(Clone, Debug)]
pub struct SoftirqState {
    pending: Vec<u8>,
    raised: Counter,
    handled: Counter,
    tracer: Option<Tracer>,
    fault: Option<FaultInjector>,
}

impl SoftirqState {
    /// Creates state for `num_cpus` CPUs with nothing pending.
    pub fn new(num_cpus: u32) -> Self {
        SoftirqState {
            pending: vec![0; num_cpus as usize],
            raised: Counter::new(),
            handled: Counter::new(),
            tracer: None,
            fault: None,
        }
    }

    /// Attaches a scheduler tracer (raises and dispatches are
    /// recorded, stamped with the tracer clock).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// Attaches a fault injector (lost raises).
    pub fn set_fault(&mut self, fault: FaultInjector) {
        self.fault = Some(fault);
    }

    /// Grows to cover newly registered CPUs.
    pub fn ensure_cpus(&mut self, num_cpus: u32) {
        if num_cpus as usize > self.pending.len() {
            self.pending.resize(num_cpus as usize, 0);
        }
    }

    /// Raises `kind` on `cpu`. Returns `true` if it was newly raised
    /// (not already pending). A raise can be lost to fault injection
    /// (the cross-CPU notification never lands): the pending bit stays
    /// clear, no raise is counted, and the caller sees `false` — the
    /// same signature as "already pending", which is why callers that
    /// need the distinction check [`is_pending`](Self::is_pending).
    pub fn raise(&mut self, cpu: CpuId, kind: SoftirqKind) -> bool {
        if let Some(f) = &self.fault {
            if f.softirq_dropped(cpu.0) {
                return false;
            }
        }
        let Some(p) = self.pending.get_mut(cpu.index()) else {
            return false;
        };
        let bit = 1u8 << (kind as u8);
        let newly = *p & bit == 0;
        *p |= bit;
        if newly {
            self.raised.inc();
            if let Some(t) = &self.tracer {
                t.emit(cpu.0, TraceKind::SoftirqRaise { kind: kind.name() });
            }
        }
        newly
    }

    /// True when `kind` is pending on `cpu`.
    pub fn is_pending(&self, cpu: CpuId, kind: SoftirqKind) -> bool {
        self.pending
            .get(cpu.index())
            .map(|p| p & (1 << (kind as u8)) != 0)
            .unwrap_or(false)
    }

    /// Raw pending bitmap for `cpu` (bit `kind as u8` set when that
    /// softirq is pending; `0` for unknown CPUs). The scheduling
    /// policies' [`KernelCtx`] view exposes runqueue state through
    /// this without borrowing the mutable interface.
    ///
    /// [`KernelCtx`]: ../taichi_core/sched/struct.KernelCtx.html
    pub fn pending_mask(&self, cpu: CpuId) -> u8 {
        self.pending.get(cpu.index()).copied().unwrap_or(0)
    }

    /// True when any softirq is pending on `cpu`.
    pub fn any_pending(&self, cpu: CpuId) -> bool {
        self.pending
            .get(cpu.index())
            .map(|&p| p != 0)
            .unwrap_or(false)
    }

    /// True when any softirq is pending on *any* CPU (the invariant
    /// checker's drain test).
    pub fn any_pending_anywhere(&self) -> bool {
        self.pending.iter().any(|&p| p != 0)
    }

    /// Clears and "handles" `kind` on `cpu`; returns whether it was
    /// pending.
    pub fn handle(&mut self, cpu: CpuId, kind: SoftirqKind) -> bool {
        let Some(p) = self.pending.get_mut(cpu.index()) else {
            return false;
        };
        let bit = 1u8 << (kind as u8);
        if *p & bit != 0 {
            *p &= !bit;
            self.handled.inc();
            if let Some(t) = &self.tracer {
                t.emit(cpu.0, TraceKind::SoftirqDispatch { kind: kind.name() });
            }
            true
        } else {
            false
        }
    }

    /// Total raises.
    pub fn total_raised(&self) -> u64 {
        self.raised.get()
    }

    /// Total handled.
    pub fn total_handled(&self) -> u64 {
        self.handled.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raise_and_handle() {
        let mut s = SoftirqState::new(4);
        assert!(s.raise(CpuId(1), SoftirqKind::TaiChiVcpu));
        assert!(s.is_pending(CpuId(1), SoftirqKind::TaiChiVcpu));
        assert!(s.any_pending(CpuId(1)));
        assert!(!s.any_pending(CpuId(0)));
        assert!(s.handle(CpuId(1), SoftirqKind::TaiChiVcpu));
        assert!(!s.is_pending(CpuId(1), SoftirqKind::TaiChiVcpu));
        assert!(!s.handle(CpuId(1), SoftirqKind::TaiChiVcpu));
    }

    #[test]
    fn duplicate_raise_collapses() {
        let mut s = SoftirqState::new(4);
        assert!(s.raise(CpuId(0), SoftirqKind::NetRx));
        assert!(!s.raise(CpuId(0), SoftirqKind::NetRx));
        assert_eq!(s.total_raised(), 1);
    }

    #[test]
    fn kinds_are_independent() {
        let mut s = SoftirqState::new(2);
        s.raise(CpuId(0), SoftirqKind::Timer);
        s.raise(CpuId(0), SoftirqKind::NetRx);
        assert!(s.handle(CpuId(0), SoftirqKind::Timer));
        assert!(s.is_pending(CpuId(0), SoftirqKind::NetRx));
    }

    #[test]
    fn ensure_cpus_grows() {
        let mut s = SoftirqState::new(2);
        assert!(!s.raise(CpuId(5), SoftirqKind::Timer));
        s.ensure_cpus(8);
        assert!(s.raise(CpuId(5), SoftirqKind::Timer));
        assert_eq!(s.total_handled(), 0);
    }
}
