//! SmartNIC operating-system model.
//!
//! A deterministic model of the parts of a Linux kernel that matter for
//! the Tai Chi reproduction:
//!
//! - **Threads & programs** ([`thread`]): control-plane tasks are
//!   programs — sequences of user-compute, preemptible-kernel,
//!   non-preemptible-kernel (spinlock / IRQ-off), sleep, and IPC
//!   segments — exactly the structure §3.2 of the paper traces.
//! - **Scheduler** ([`kernel`]): per-CPU runqueues with fair round-robin
//!   time slicing. The crucial fidelity point: time-slice preemption is
//!   *deferred* while the running thread is inside a non-preemptible
//!   section, reproducing the ms-scale scheduling stalls (constraint C2)
//!   that motivate Tai Chi.
//! - **Spinlocks** ([`lock`]): contended locks spin-wait, so a lock
//!   holder whose (virtual) CPU is descheduled stalls every spinner —
//!   the deadlock hazard §4.1's safe rescheduling policy exists for.
//! - **CPU hotplug**: CPUs register offline, come online through an
//!   INIT/SIPI-like boot handshake, and are then indistinguishable from
//!   boot CPUs to the scheduler — the mechanism Tai Chi uses to expose
//!   vCPUs as native CPUs.
//! - **Pause/resume** ([`kernel::Kernel::pause_cpu`]): an external
//!   hypervisor (Tai Chi's vCPU scheduler) can freeze a CPU's execution
//!   and resume it later; thread progress on that CPU dilates
//!   accordingly. This is what makes *hybrid virtualization* modelable:
//!   vCPUs are kernel CPUs whose physical time is granted and revoked.
//! - **Softirqs** ([`softirq`]): per-CPU pending softirq state, used by
//!   Tai Chi's softirq-based context-switch mechanism.
//!
//! The kernel is a passive state machine: every mutator takes `now` and
//! an [`ActionBuf`] out-parameter it appends [`kernel::KernelAction`]s
//! to (wakeup timers to arm, IPIs to route, finished threads) plus
//! dirty-CPU markers; a driver (the machine composition in
//! `taichi-core`) owns the event queue and a reusable scratch buffer.

pub mod actions;
pub mod cpuset;
pub mod kernel;
pub mod lock;
pub mod softirq;
pub mod thread;

pub use actions::ActionBuf;
pub use cpuset::CpuSet;
pub use kernel::{Kernel, KernelAction, KernelConfig};
pub use lock::LockId;
pub use softirq::SoftirqKind;
pub use thread::{Program, Segment, ThreadId, ThreadState};
