//! Threads and the segment programs they execute.
//!
//! A control-plane task is modelled as a *program*: an ordered list of
//! [`Segment`]s alternating user-space computation, preemptible kernel
//! work (ordinary syscalls), non-preemptible kernel routines (spinlock
//! held / IRQs off — the §3.2 troublemakers), sleeps, and zero-duration
//! IPC actions. The kernel executes programs segment by segment; the
//! scheduler may split any *preemptible* segment across time slices, but
//! never a non-preemptible one.

use crate::cpuset::CpuSet;
use crate::lock::LockId;
use taichi_sim::{SimDuration, SimTime};

/// Identifies a kernel thread.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u64);

impl std::fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tid{}", self.0)
    }
}

/// One step of a thread's program.
#[derive(Clone, Debug, PartialEq)]
pub enum Segment {
    /// User-space computation; preemptible at any instant.
    UserCompute(SimDuration),
    /// Preemptible kernel work (syscall body outside critical sections).
    KernelPreemptible(SimDuration),
    /// Non-preemptible kernel routine. If `lock` is set, the routine
    /// first acquires that spinlock (spinning on the CPU while it is
    /// held elsewhere) and releases it when the routine completes.
    NonPreemptible {
        /// Critical-section length.
        dur: SimDuration,
        /// Optional spinlock guarding the routine.
        lock: Option<LockId>,
    },
    /// Block off-CPU for the given time (I/O wait, nanosleep, ...).
    Sleep(SimDuration),
    /// Zero-duration IPC: wake `target` if it is sleeping (models a
    /// signal/futex/pipe notification, which at the kernel level turns
    /// into a reschedule IPI towards the target's CPU).
    Notify {
        /// Thread to wake.
        target: ThreadId,
    },
    /// Cooperative yield: go to the back of the runqueue.
    Yield,
}

impl Segment {
    /// Convenience: a non-preemptible routine without a lock.
    pub fn nonpreemptible(dur: SimDuration) -> Segment {
        Segment::NonPreemptible { dur, lock: None }
    }

    /// Convenience: a non-preemptible routine guarded by `lock`.
    pub fn locked(dur: SimDuration, lock: LockId) -> Segment {
        Segment::NonPreemptible {
            dur,
            lock: Some(lock),
        }
    }

    /// True for segments the scheduler must not split.
    pub fn is_non_preemptible(&self) -> bool {
        matches!(self, Segment::NonPreemptible { .. })
    }

    /// The CPU time the segment consumes (zero for actions/sleeps).
    pub fn cpu_time(&self) -> SimDuration {
        match self {
            Segment::UserCompute(d)
            | Segment::KernelPreemptible(d)
            | Segment::NonPreemptible { dur: d, .. } => *d,
            _ => SimDuration::ZERO,
        }
    }
}

/// An ordered list of segments.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    segments: Vec<Segment>,
}

impl Program {
    /// Creates an empty program (finishes immediately when scheduled).
    pub fn new() -> Self {
        Program::default()
    }

    /// Builder: appends a segment.
    pub fn then(mut self, seg: Segment) -> Self {
        self.segments.push(seg);
        self
    }

    /// Builder: appends user-space computation.
    pub fn compute(self, dur: SimDuration) -> Self {
        self.then(Segment::UserCompute(dur))
    }

    /// Builder: appends a preemptible syscall body.
    pub fn syscall(self, dur: SimDuration) -> Self {
        self.then(Segment::KernelPreemptible(dur))
    }

    /// Builder: appends a non-preemptible routine.
    pub fn critical(self, dur: SimDuration) -> Self {
        self.then(Segment::nonpreemptible(dur))
    }

    /// Builder: appends a lock-guarded non-preemptible routine.
    pub fn critical_locked(self, dur: SimDuration, lock: LockId) -> Self {
        self.then(Segment::locked(dur, lock))
    }

    /// Builder: appends a sleep.
    pub fn sleep(self, dur: SimDuration) -> Self {
        self.then(Segment::Sleep(dur))
    }

    /// Segments in order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True when the program has no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total CPU time the program consumes if run to completion.
    pub fn total_cpu_time(&self) -> SimDuration {
        self.segments
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.cpu_time())
    }
}

/// Lifecycle state of a thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadState {
    /// On a runqueue, waiting for CPU.
    Ready,
    /// Currently executing on a CPU.
    Running,
    /// Spinning on a contended lock (consumes CPU but makes no
    /// program progress).
    Spinning,
    /// Blocked (sleeping / waiting for a notify).
    Sleeping,
    /// Program complete.
    Finished,
}

/// Per-thread bookkeeping (scheduler-internal, exposed for metrics).
#[derive(Clone, Debug)]
pub struct Thread {
    /// Thread ID.
    pub id: ThreadId,
    /// The program being executed.
    pub program: Program,
    /// Index of the current segment.
    pub pc: usize,
    /// CPU time remaining in the current segment.
    pub remaining: SimDuration,
    /// Affinity mask.
    pub affinity: CpuSet,
    /// Lifecycle state.
    pub state: ThreadState,
    /// When the thread was spawned.
    pub spawned_at: SimTime,
    /// When the thread finished (if it has).
    pub finished_at: Option<SimTime>,
    /// Total CPU time consumed so far (program progress only).
    pub cpu_time: SimDuration,
    /// Total CPU time burned spinning on locks.
    pub spin_time: SimDuration,
    /// Lock currently held, if any.
    pub holding: Option<LockId>,
}

impl Thread {
    /// Creates a new ready thread positioned at its first segment.
    pub fn new(id: ThreadId, program: Program, affinity: CpuSet, now: SimTime) -> Self {
        let remaining = program
            .segments()
            .first()
            .map(|s| s.cpu_time())
            .unwrap_or(SimDuration::ZERO);
        Thread {
            id,
            program,
            pc: 0,
            remaining,
            affinity,
            state: ThreadState::Ready,
            spawned_at: now,
            finished_at: None,
            cpu_time: SimDuration::ZERO,
            spin_time: SimDuration::ZERO,
            holding: None,
        }
    }

    /// The current segment, if the program is not complete.
    pub fn current_segment(&self) -> Option<&Segment> {
        self.program.segments().get(self.pc)
    }

    /// True when the thread is inside a critical section: holding a
    /// spinlock, or executing a non-preemptible segment. This is the
    /// §4.1 lock-context condition — a vCPU preempted while its
    /// current thread is in a critical section must be re-placed
    /// immediately or every sibling spinning on the same lock wastes
    /// its slice (the `P^N` argument).
    pub fn in_critical_section(&self) -> bool {
        self.holding.is_some()
            || matches!(self.current_segment(), Some(s) if s.is_non_preemptible())
    }

    /// Turnaround time (spawn → finish), if finished.
    pub fn turnaround(&self) -> Option<SimDuration> {
        self.finished_at.map(|f| f - self.spawned_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_builder_and_totals() {
        let p = Program::new()
            .compute(SimDuration::from_micros(100))
            .syscall(SimDuration::from_micros(50))
            .critical(SimDuration::from_millis(2))
            .sleep(SimDuration::from_millis(1));
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
        assert_eq!(
            p.total_cpu_time(),
            SimDuration::from_micros(100 + 50 + 2_000)
        );
    }

    #[test]
    fn segment_preemptibility() {
        assert!(!Segment::UserCompute(SimDuration::from_micros(1)).is_non_preemptible());
        assert!(!Segment::KernelPreemptible(SimDuration::from_micros(1)).is_non_preemptible());
        assert!(Segment::nonpreemptible(SimDuration::from_micros(1)).is_non_preemptible());
        assert!(Segment::locked(SimDuration::from_micros(1), LockId(0)).is_non_preemptible());
    }

    #[test]
    fn zero_duration_segments() {
        assert_eq!(
            Segment::Notify {
                target: ThreadId(1)
            }
            .cpu_time(),
            SimDuration::ZERO
        );
        assert_eq!(Segment::Yield.cpu_time(), SimDuration::ZERO);
        assert_eq!(
            Segment::Sleep(SimDuration::from_millis(5)).cpu_time(),
            SimDuration::ZERO
        );
    }

    #[test]
    fn thread_initial_state() {
        let p = Program::new().compute(SimDuration::from_micros(10));
        let t = Thread::new(ThreadId(1), p, CpuSet::range(0, 4), SimTime::from_micros(3));
        assert_eq!(t.state, ThreadState::Ready);
        assert_eq!(t.pc, 0);
        assert_eq!(t.remaining, SimDuration::from_micros(10));
        assert!(t.turnaround().is_none());
        assert!(t.current_segment().is_some());
    }

    #[test]
    fn empty_program_thread() {
        let t = Thread::new(
            ThreadId(2),
            Program::new(),
            CpuSet::single(taichi_hw::CpuId(0)),
            SimTime::ZERO,
        );
        assert!(t.current_segment().is_none());
        assert_eq!(t.remaining, SimDuration::ZERO);
    }

    #[test]
    fn turnaround_computed() {
        let mut t = Thread::new(
            ThreadId(3),
            Program::new(),
            CpuSet::single(taichi_hw::CpuId(0)),
            SimTime::from_micros(10),
        );
        t.finished_at = Some(SimTime::from_micros(35));
        assert_eq!(t.turnaround(), Some(SimDuration::from_micros(25)));
    }
}
