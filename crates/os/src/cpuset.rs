//! CPU affinity masks.
//!
//! A [`CpuSet`] is the standard affinity abstraction (`sched_setaffinity`
//! / cgroup cpuset): a bitmask of CPU IDs a thread may run on. Tai Chi's
//! zero-modification deployment story rests on exactly this mechanism —
//! CP tasks are bound to vCPUs purely by affinity (§4.2), so the mask
//! must treat virtual and physical CPU IDs uniformly.

use taichi_hw::CpuId;

/// A set of CPU IDs, supporting up to 128 CPUs (12 physical + up to 116
/// registered vCPUs — far beyond any SmartNIC configuration).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CpuSet(u128);

impl CpuSet {
    /// The empty set.
    pub const EMPTY: CpuSet = CpuSet(0);

    /// Maximum representable CPU ID.
    pub const MAX_CPU: u32 = 127;

    /// Creates a set containing a single CPU.
    pub fn single(cpu: CpuId) -> Self {
        let mut s = CpuSet::EMPTY;
        s.insert(cpu);
        s
    }

    /// Creates a set covering a contiguous ID range `[lo, hi)`.
    pub fn range(lo: u32, hi: u32) -> Self {
        CpuSet::from_iter((lo..hi).map(CpuId))
    }

    /// Adds a CPU.
    ///
    /// # Panics
    ///
    /// Panics if the CPU ID exceeds [`CpuSet::MAX_CPU`].
    pub fn insert(&mut self, cpu: CpuId) {
        assert!(
            cpu.0 <= Self::MAX_CPU,
            "CPU id {} out of CpuSet range",
            cpu.0
        );
        self.0 |= 1u128 << cpu.0;
    }

    /// Removes a CPU.
    pub fn remove(&mut self, cpu: CpuId) {
        if cpu.0 <= Self::MAX_CPU {
            self.0 &= !(1u128 << cpu.0);
        }
    }

    /// True when the set contains `cpu`.
    pub fn contains(&self, cpu: CpuId) -> bool {
        cpu.0 <= Self::MAX_CPU && (self.0 >> cpu.0) & 1 == 1
    }

    /// Number of CPUs in the set.
    pub fn len(&self) -> u32 {
        self.0.count_ones()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Set union.
    pub fn union(&self, other: &CpuSet) -> CpuSet {
        CpuSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersection(&self, other: &CpuSet) -> CpuSet {
        CpuSet(self.0 & other.0)
    }

    /// Iterates the member CPUs in ascending ID order.
    pub fn iter(&self) -> impl Iterator<Item = CpuId> + '_ {
        (0..=Self::MAX_CPU)
            .filter(|&i| (self.0 >> i) & 1 == 1)
            .map(CpuId)
    }
}

impl std::fmt::Debug for CpuSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CpuSet{{")?;
        let mut first = true;
        for c in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{}", c.0)?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl FromIterator<CpuId> for CpuSet {
    fn from_iter<I: IntoIterator<Item = CpuId>>(iter: I) -> Self {
        let mut s = CpuSet::EMPTY;
        for c in iter {
            s.insert(c);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = CpuSet::EMPTY;
        assert!(s.is_empty());
        s.insert(CpuId(3));
        s.insert(CpuId(100));
        assert!(s.contains(CpuId(3)));
        assert!(s.contains(CpuId(100)));
        assert!(!s.contains(CpuId(4)));
        assert_eq!(s.len(), 2);
        s.remove(CpuId(3));
        assert!(!s.contains(CpuId(3)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn range_and_iter() {
        let s = CpuSet::range(8, 12);
        let ids: Vec<u32> = s.iter().map(|c| c.0).collect();
        assert_eq!(ids, vec![8, 9, 10, 11]);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn union_intersection() {
        let a = CpuSet::range(0, 8);
        let b = CpuSet::range(6, 10);
        assert_eq!(a.union(&b).len(), 10);
        let i = a.intersection(&b);
        assert_eq!(i.iter().map(|c| c.0).collect::<Vec<_>>(), vec![6, 7]);
    }

    #[test]
    fn single_and_from_iter() {
        let s = CpuSet::single(CpuId(5));
        assert_eq!(s.len(), 1);
        assert!(s.contains(CpuId(5)));
        let t: CpuSet = [CpuId(1), CpuId(2)].into_iter().collect();
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of CpuSet range")]
    fn oversized_id_panics() {
        let mut s = CpuSet::EMPTY;
        s.insert(CpuId(128));
    }

    #[test]
    fn debug_format() {
        let s = CpuSet::range(0, 3);
        assert_eq!(format!("{s:?}"), "CpuSet{0,1,2}");
    }

    #[test]
    fn out_of_range_queries_are_safe() {
        let s = CpuSet::range(0, 4);
        assert!(!s.contains(CpuId(200)));
        let mut s2 = s;
        s2.remove(CpuId(200)); // no-op, no panic
        assert_eq!(s2, s);
    }
}
