//! The kernel scheduler model.
//!
//! # Execution model
//!
//! The kernel owns a set of CPUs (physical control-plane cores plus any
//! hotplug-registered vCPUs) and schedules [`Thread`]s over them with a
//! fair round-robin policy and a fixed time slice (CFS-like
//! granularity, default 3 ms). Three fidelity points drive the design:
//!
//! 1. **Non-preemptible routines defer preemption.** A time slice that
//!    expires while the running thread is inside a
//!    [`Segment::NonPreemptible`] section does not switch threads; the
//!    switch happens at the section's end. This reproduces the
//!    ms-scale scheduling stalls of §3.2.
//! 2. **Contended spinlocks burn CPU.** A thread that fails to acquire
//!    a lock spins on its CPU (state [`ThreadState::Spinning`]) until
//!    the holder releases, charging spin time but making no progress.
//! 3. **CPUs can be externally paused.** Tai Chi's vCPU scheduler
//!    grants and revokes physical time; [`Kernel::pause_cpu`] freezes a
//!    CPU mid-segment (progress is charged up to the pause instant) and
//!    [`Kernel::resume_cpu`] continues it. The kernel itself is
//!    oblivious to why — exactly like a guest kernel under a
//!    hypervisor.
//!
//! # Driving the kernel
//!
//! The kernel is passive. Every mutator takes `now` plus an
//! [`ActionBuf`] out-parameter and appends the [`KernelAction`]s the
//! driver must carry out — an allocation-free protocol: the driver owns
//! one scratch buffer and reuses it across calls. The driver must:
//!
//! - arm a timer for every [`KernelAction::ArmWakeup`] and call
//!   [`Kernel::wakeup`] when it fires;
//! - route every [`KernelAction::SendIpi`] (this is where Tai Chi's
//!   unified IPI orchestrator hooks in);
//! - after any call, re-read [`Kernel::next_decision_time`] for every
//!   CPU named in a [`KernelAction::Rearm`] and (re)schedule a call to
//!   [`Kernel::decide`] at that time.

use crate::actions::ActionBuf;
use crate::cpuset::CpuSet;
use crate::lock::LockTable;
use crate::softirq::SoftirqState;
use crate::thread::{Program, Segment, Thread, ThreadId, ThreadState};
use taichi_hw::{CpuId, IrqVector};
use taichi_sim::{FaultInjector, SimDuration, SimTime, TraceKind, Tracer, UtilizationMeter};

use std::collections::VecDeque;

/// Scheduler tuning knobs.
#[derive(Clone, Debug)]
pub struct KernelConfig {
    /// Fair-scheduling time slice (CFS-like granularity).
    pub timeslice: SimDuration,
    /// Cost of a thread context switch (register/stack switch plus
    /// scheduler bookkeeping).
    pub context_switch: SimDuration,
    /// Whether enqueueing work on an idle CPU emits a reschedule IPI.
    pub wakeup_ipi: bool,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            timeslice: SimDuration::from_millis(3),
            context_switch: SimDuration::from_micros(2),
            wakeup_ipi: true,
        }
    }
}

/// Side effects the driver must carry out.
///
/// `Copy` so drivers can iterate a shared [`ActionBuf`] by value while
/// mutating the rest of their state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelAction {
    /// Arm a timer: call [`Kernel::wakeup`]`(tid)` at `at`.
    ArmWakeup {
        /// Sleeping thread.
        tid: ThreadId,
        /// Absolute wake time.
        at: SimTime,
    },
    /// A thread ran to completion.
    ThreadFinished {
        /// The finished thread.
        tid: ThreadId,
    },
    /// The kernel wants to send an IPI (reschedule kick, etc.). The
    /// driver routes it — possibly through Tai Chi's orchestrator.
    SendIpi {
        /// Sending CPU (the CPU on which the kernel code ran).
        src: CpuId,
        /// Destination CPU.
        dst: CpuId,
        /// Vector.
        vector: IrqVector,
    },
    /// CPU state changed: re-read [`Kernel::next_decision_time`] for
    /// this CPU and reschedule the decision timer.
    Rearm {
        /// Affected CPU.
        cpu: CpuId,
    },
}

/// Hotplug lifecycle of a kernel CPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CpuPhase {
    /// Registered but not yet booted (visible as an offline CPU).
    Offline,
    /// INIT received, waiting for startup (SIPI).
    Booting,
    /// Fully schedulable.
    Online,
}

#[derive(Clone, Copy, Debug)]
struct RunningCtx {
    tid: ThreadId,
    /// When the current execution span began (progress is charged from
    /// here). While spinning, this marks the spin start.
    span_start: SimTime,
    /// When this thread was dispatched (slice accounting).
    slice_start: SimTime,
    /// Set while spin-waiting on a lock.
    spinning: bool,
}

#[derive(Clone, Debug)]
struct Cpu {
    phase: CpuPhase,
    paused: bool,
    current: Option<RunningCtx>,
    queue: VecDeque<ThreadId>,
    meter: UtilizationMeter,
}

impl Cpu {
    fn new(now: SimTime, phase: CpuPhase) -> Self {
        Cpu {
            phase,
            paused: false,
            current: None,
            queue: VecDeque::new(),
            meter: UtilizationMeter::new(now),
        }
    }

    fn runnable(&self) -> bool {
        self.phase == CpuPhase::Online && !self.paused
    }

    fn load(&self) -> usize {
        self.queue.len() + usize::from(self.current.is_some())
    }
}

/// The kernel scheduler state machine.
#[derive(Clone, Debug)]
pub struct Kernel {
    config: KernelConfig,
    cpus: Vec<Option<Cpu>>,
    threads: Vec<Thread>,
    locks: LockTable,
    softirqs: SoftirqState,
    /// Threads that finished (kept for metrics queries).
    finished: Vec<ThreadId>,
    tracer: Option<Tracer>,
}

impl Kernel {
    /// Creates a kernel with the given boot CPUs online at time zero.
    pub fn new(config: KernelConfig, boot_cpus: &[CpuId]) -> Self {
        let mut k = Kernel {
            config,
            cpus: Vec::new(),
            threads: Vec::new(),
            locks: LockTable::new(),
            softirqs: SoftirqState::new(0),
            finished: Vec::new(),
            tracer: None,
        };
        for &c in boot_cpus {
            k.slot_mut(c)
                .replace(Cpu::new(SimTime::ZERO, CpuPhase::Online));
        }
        k.softirqs
            .ensure_cpus(boot_cpus.iter().map(|c| c.0 + 1).max().unwrap_or(0));
        k
    }

    fn slot_mut(&mut self, cpu: CpuId) -> &mut Option<Cpu> {
        if cpu.index() >= self.cpus.len() {
            self.cpus.resize(cpu.index() + 1, None);
        }
        &mut self.cpus[cpu.index()]
    }

    fn cpu(&self, cpu: CpuId) -> Option<&Cpu> {
        self.cpus.get(cpu.index()).and_then(|c| c.as_ref())
    }

    fn cpu_mut(&mut self, cpu: CpuId) -> Option<&mut Cpu> {
        self.cpus.get_mut(cpu.index()).and_then(|c| c.as_mut())
    }

    fn thread(&self, tid: ThreadId) -> &Thread {
        &self.threads[tid.0 as usize]
    }

    fn thread_mut(&mut self, tid: ThreadId) -> &mut Thread {
        &mut self.threads[tid.0 as usize]
    }

    /// Read-only view of a thread (for metrics).
    pub fn thread_info(&self, tid: ThreadId) -> &Thread {
        self.thread(tid)
    }

    /// IDs of all threads ever spawned.
    pub fn all_threads(&self) -> impl Iterator<Item = ThreadId> + '_ {
        (0..self.threads.len() as u64).map(ThreadId)
    }

    /// The lock table (for assertions in tests).
    pub fn locks(&self) -> &LockTable {
        &self.locks
    }

    /// The softirq state.
    pub fn softirqs(&mut self) -> &mut SoftirqState {
        &mut self.softirqs
    }

    /// Read-only softirq state (for the invariant checker).
    pub fn softirq_state(&self) -> &SoftirqState {
        &self.softirqs
    }

    /// Attaches a scheduler tracer (preemptions, non-preemptible
    /// sections, and softirq activity are recorded).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.softirqs.set_tracer(tracer.clone());
        self.tracer = Some(tracer);
    }

    /// Attaches a fault injector (lost softirq raises).
    pub fn set_fault(&mut self, fault: FaultInjector) {
        self.softirqs.set_fault(fault);
    }

    fn trace(&self, at: SimTime, cpu: CpuId, kind: TraceKind) {
        if let Some(t) = &self.tracer {
            t.emit_at(at, cpu.0, kind);
        }
    }

    /// All CPUs the kernel knows about, in ID order.
    pub fn known_cpus(&self) -> Vec<CpuId> {
        self.cpus
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|_| CpuId(i as u32)))
            .collect()
    }

    /// Hotplug phase of `cpu` (None when unknown).
    pub fn cpu_phase(&self, cpu: CpuId) -> Option<CpuPhase> {
        self.cpu(cpu).map(|c| c.phase)
    }

    // ---------------------------------------------------------------
    // Hotplug.
    // ---------------------------------------------------------------

    /// Registers a new CPU in the `Offline` phase (vCPU registration,
    /// Fig. 8a step 1).
    pub fn register_cpu(&mut self, cpu: CpuId, now: SimTime) {
        assert!(self.cpu(cpu).is_none(), "{cpu} already registered");
        self.slot_mut(cpu).replace(Cpu::new(now, CpuPhase::Offline));
        self.softirqs.ensure_cpus(cpu.0 + 1);
    }

    /// Delivers the INIT boot IPI: `Offline` → `Booting`.
    pub fn cpu_init(&mut self, cpu: CpuId) {
        if let Some(c) = self.cpu_mut(cpu) {
            if c.phase == CpuPhase::Offline {
                c.phase = CpuPhase::Booting;
            }
        }
    }

    /// Delivers the SIPI: `Booting` → `Online`. The CPU becomes
    /// schedulable.
    pub fn cpu_online(&mut self, cpu: CpuId, out: &mut ActionBuf) {
        if let Some(c) = self.cpu_mut(cpu) {
            if c.phase == CpuPhase::Booting {
                c.phase = CpuPhase::Online;
                out.push(KernelAction::Rearm { cpu });
            }
        }
    }

    // ---------------------------------------------------------------
    // Pause / resume (the hypervisor hooks).
    // ---------------------------------------------------------------

    /// Freezes `cpu`: progress on the current thread is charged up to
    /// `now` and execution stops until [`Kernel::resume_cpu`].
    pub fn pause_cpu(&mut self, cpu: CpuId, now: SimTime, out: &mut ActionBuf) {
        let Some(c) = self.cpu_mut(cpu) else {
            return;
        };
        if c.paused {
            return;
        }
        c.paused = true;
        c.meter.set_idle(now);
        if let Some(ctx) = c.current {
            self.charge_progress(cpu, &ctx, now);
            if let Some(c) = self.cpu_mut(cpu) {
                if let Some(cur) = c.current.as_mut() {
                    cur.span_start = now; // frozen marker; reset on resume
                }
            }
        }
        out.push(KernelAction::Rearm { cpu });
    }

    /// Unfreezes `cpu`; the current thread (if any) continues from
    /// where it was paused.
    pub fn resume_cpu(&mut self, cpu: CpuId, now: SimTime, out: &mut ActionBuf) {
        let Some(c) = self.cpu_mut(cpu) else {
            return;
        };
        if !c.paused {
            return;
        }
        c.paused = false;
        if let Some(cur) = c.current.as_mut() {
            cur.span_start = now;
            cur.slice_start = now; // fresh slice after a pause
            c.meter.set_busy(now);
        }
        let dispatch = c.current.is_none() && !c.queue.is_empty();
        out.push(KernelAction::Rearm { cpu });
        if dispatch {
            self.dispatch_next(cpu, now, out);
        }
    }

    /// True when `cpu` is paused.
    pub fn is_paused(&self, cpu: CpuId) -> bool {
        self.cpu(cpu).map(|c| c.paused).unwrap_or(false)
    }

    // ---------------------------------------------------------------
    // Queries used by Tai Chi.
    // ---------------------------------------------------------------

    /// True when `cpu` has a current thread or queued work or a pending
    /// softirq — i.e. granting it physical time would be useful.
    pub fn cpu_has_work(&self, cpu: CpuId) -> bool {
        self.cpu(cpu)
            .map(|c| c.current.is_some() || !c.queue.is_empty())
            .unwrap_or(false)
            || self.softirqs.any_pending(cpu)
    }

    /// True when the thread currently on `cpu` is inside a lock context
    /// (holding a spinlock or executing a non-preemptible routine) —
    /// the §4.1 condition requiring safe rescheduling after preemption.
    pub fn in_lock_context(&self, cpu: CpuId) -> bool {
        let Some(c) = self.cpu(cpu) else {
            return false;
        };
        let Some(ctx) = &c.current else {
            return false;
        };
        self.thread(ctx.tid).in_critical_section()
    }

    /// Queue depth + running count on `cpu`.
    pub fn cpu_load(&self, cpu: CpuId) -> usize {
        self.cpu(cpu).map(|c| c.load()).unwrap_or(0)
    }

    /// Queued-thread depth on `cpu`, excluding the running thread
    /// (the runqueue view scheduling policies read through their
    /// kernel context).
    pub fn runqueue_depth(&self, cpu: CpuId) -> usize {
        self.cpu(cpu).map(|c| c.queue.len()).unwrap_or(0)
    }

    /// Lifetime busy fraction of `cpu`.
    pub fn cpu_utilization(&self, cpu: CpuId, now: SimTime) -> f64 {
        self.cpu(cpu)
            .map(|c| c.meter.lifetime_utilization(now))
            .unwrap_or(0.0)
    }

    /// The thread currently on `cpu`.
    pub fn current_thread(&self, cpu: CpuId) -> Option<ThreadId> {
        self.cpu(cpu)
            .and_then(|c| c.current.as_ref().map(|r| r.tid))
    }

    // ---------------------------------------------------------------
    // Spawning / waking.
    // ---------------------------------------------------------------

    /// Spawns a thread and places it on the least-loaded eligible CPU.
    ///
    /// Returns the new thread's ID; driver actions land in `out`.
    pub fn spawn(
        &mut self,
        program: Program,
        affinity: CpuSet,
        now: SimTime,
        out: &mut ActionBuf,
    ) -> ThreadId {
        let tid = ThreadId(self.threads.len() as u64);
        self.threads.push(Thread::new(tid, program, affinity, now));
        self.make_ready(tid, now, out);
        tid
    }

    /// Wakes a sleeping thread (driver calls this at `ArmWakeup` time).
    pub fn wakeup(&mut self, tid: ThreadId, now: SimTime, out: &mut ActionBuf) {
        if self.thread(tid).state != ThreadState::Sleeping {
            return;
        }
        self.make_ready(tid, now, out);
    }

    /// Changes a thread's CPU affinity (`sched_setaffinity`).
    ///
    /// Queued threads outside the new mask are re-placed immediately.
    /// A *running* thread on an excluded CPU is migrated at its next
    /// scheduling point: preemptible work is preempted right away,
    /// while a non-preemptible routine finishes first (the kernel
    /// cannot migrate a CPU that is inside a critical section) — the
    /// migration is applied when the thread next leaves the CPU.
    pub fn set_affinity(
        &mut self,
        tid: ThreadId,
        affinity: CpuSet,
        now: SimTime,
        out: &mut ActionBuf,
    ) {
        assert!(!affinity.is_empty(), "affinity mask must be non-empty");
        self.thread_mut(tid).affinity = affinity;
        match self.thread(tid).state {
            ThreadState::Ready => {
                // Find and remove it from its current queue, then
                // re-place under the new mask.
                for i in 0..self.cpus.len() {
                    let cpu = CpuId(i as u32);
                    let in_queue = self
                        .cpu(cpu)
                        .map(|c| c.queue.contains(&tid))
                        .unwrap_or(false);
                    if in_queue {
                        if affinity.contains(cpu) {
                            return; // already legal
                        }
                        if let Some(c) = self.cpu_mut(cpu) {
                            if let Some(pos) = c.queue.iter().position(|&t| t == tid) {
                                c.queue.remove(pos);
                            }
                        }
                        out.push(KernelAction::Rearm { cpu });
                        self.make_ready(tid, now, out);
                        return;
                    }
                }
                self.make_ready(tid, now, out);
            }
            ThreadState::Running => {
                let Some(cpu) = self.find_cpu_of(tid) else {
                    return;
                };
                if affinity.contains(cpu) {
                    return;
                }
                let seg_np = self
                    .thread(tid)
                    .current_segment()
                    .map(|s| s.is_non_preemptible())
                    .unwrap_or(false);
                if seg_np || self.is_paused(cpu) {
                    // Migrate at the next scheduling point: the
                    // decision engine re-checks affinity when the
                    // segment completes (see `advance_thread`).
                    return;
                }
                // Preempt and migrate now.
                if let Some(ctx) = self.cpu(cpu).and_then(|c| c.current) {
                    self.charge_progress(cpu, &ctx, now);
                }
                self.thread_mut(tid).state = ThreadState::Ready;
                self.clear_current(cpu, now);
                self.make_ready(tid, now, out);
                self.dispatch_next(cpu, now, out);
            }
            // Sleeping/Spinning/Finished: the new mask applies at the
            // next wakeup / lock handover / never.
            _ => {}
        }
    }

    /// Takes an *idle* CPU offline (no current thread). Queued threads
    /// are migrated to other CPUs in their affinity. Returns `false`
    /// (and changes nothing) when a thread is currently on the CPU.
    pub fn offline_cpu(&mut self, cpu: CpuId, now: SimTime, out: &mut ActionBuf) -> bool {
        let Some(c) = self.cpu(cpu) else {
            return false;
        };
        if c.current.is_some() {
            return false;
        }
        if let Some(c) = self.cpu_mut(cpu) {
            c.phase = CpuPhase::Offline;
        }
        out.push(KernelAction::Rearm { cpu });
        while let Some(tid) = self.cpu_mut(cpu).and_then(|c| c.queue.pop_front()) {
            self.make_ready(tid, now, out);
        }
        true
    }

    /// Places a ready thread on a CPU chosen by load within affinity.
    fn make_ready(&mut self, tid: ThreadId, now: SimTime, out: &mut ActionBuf) {
        self.thread_mut(tid).state = ThreadState::Ready;
        let affinity = self.thread(tid).affinity;
        let target = self.pick_cpu(&affinity);
        let Some(target) = target else {
            let online: Vec<CpuId> = self
                .known_cpus()
                .into_iter()
                .filter(|&c| self.cpu_phase(c) == Some(CpuPhase::Online))
                .collect();
            panic!(
                "cannot place {tid:?}: no online CPU in its affinity {affinity:?} \
                 (online CPUs: {online:?}); the task's affinity mask does not \
                 intersect the machine's online topology — widen the affinity or \
                 bring a CPU in the mask online before spawning"
            );
        };
        self.enqueue(tid, target, now, out)
    }

    /// Chooses the least-loaded online CPU in `affinity`, preferring
    /// truly idle unpaused CPUs, breaking ties by lowest ID.
    fn pick_cpu(&self, affinity: &CpuSet) -> Option<CpuId> {
        let mut best: Option<(usize, bool, CpuId)> = None;
        for cpu in affinity.iter() {
            let Some(c) = self.cpu(cpu) else { continue };
            if c.phase != CpuPhase::Online {
                continue;
            }
            let idle_unpaused = c.load() == 0 && !c.paused;
            let key = (c.load(), !idle_unpaused, cpu);
            // Prefer lower load, then idle-unpaused, then lower ID.
            let better = match &best {
                None => true,
                Some((bl, bp, bc)) => (key.0, key.1, key.2) < (*bl, *bp, *bc),
            };
            if better {
                best = Some(key);
            }
        }
        best.map(|(_, _, c)| c)
    }

    /// Enqueues `tid` on `cpu`, kicking it if idle.
    fn enqueue(&mut self, tid: ThreadId, cpu: CpuId, now: SimTime, out: &mut ActionBuf) {
        let wakeup_ipi = self.config.wakeup_ipi;
        let c = self
            .cpu_mut(cpu)
            .unwrap_or_else(|| panic!("enqueue of {tid:?} on unregistered {cpu:?}"));
        c.queue.push_back(tid);
        let idle = c.current.is_none();
        let runnable = c.runnable();
        if idle && runnable {
            self.dispatch_next(cpu, now, out);
        } else if idle && wakeup_ipi {
            // The CPU is idle but paused (a descheduled vCPU): the
            // reschedule kick must cross the virtualization boundary —
            // this is what the unified IPI orchestrator routes.
            out.push(KernelAction::SendIpi {
                src: cpu,
                dst: cpu,
                vector: IrqVector::RESCHEDULE,
            });
        }
        out.push(KernelAction::Rearm { cpu });
    }

    // ---------------------------------------------------------------
    // Decision engine.
    // ---------------------------------------------------------------

    /// When the driver must next call [`Kernel::decide`] for `cpu`.
    ///
    /// `None` means no self-transition is pending (idle, paused,
    /// offline, or spinning on a lock).
    pub fn next_decision_time(&self, cpu: CpuId, now: SimTime) -> Option<SimTime> {
        let c = self.cpu(cpu)?;
        if !c.runnable() {
            return None;
        }
        let ctx = c.current.as_ref()?;
        if ctx.spinning {
            return None; // lock release will re-arm us
        }
        let t = self.thread(ctx.tid);
        let seg = t.current_segment()?;
        let boundary = ctx.span_start + t.remaining;
        if seg.is_non_preemptible() || c.queue.is_empty() {
            Some(boundary)
        } else {
            let slice_end = ctx.slice_start + self.config.timeslice;
            Some(boundary.min(slice_end.max(now)))
        }
    }

    /// Executes due transitions on `cpu` at `now`.
    pub fn decide(&mut self, cpu: CpuId, now: SimTime, out: &mut ActionBuf) {
        let Some(c) = self.cpu(cpu) else {
            return;
        };
        if !c.runnable() {
            return;
        }
        let current = c.current;
        let queue_nonempty = !c.queue.is_empty();
        match current {
            None => {
                if queue_nonempty {
                    self.dispatch_next(cpu, now, out);
                }
            }
            Some(ctx) if ctx.spinning => {
                // Spinning threads transition only via lock release.
            }
            Some(ctx) => {
                let t = self.thread(ctx.tid);
                let boundary = ctx.span_start + t.remaining;
                if now >= boundary {
                    self.complete_segment(cpu, ctx.tid, now, out);
                } else {
                    // Slice expiry check.
                    let seg_np = t
                        .current_segment()
                        .map(|s| s.is_non_preemptible())
                        .unwrap_or(false);
                    let slice_end = ctx.slice_start + self.config.timeslice;
                    if !seg_np && queue_nonempty && now >= slice_end {
                        self.preempt_rotate(cpu, now, out);
                    }
                }
            }
        }
        out.push(KernelAction::Rearm { cpu });
    }

    /// Charges progress (or spin time) for the span `[span_start, now)`.
    fn charge_progress(&mut self, _cpu: CpuId, ctx: &RunningCtx, now: SimTime) {
        // `span_start` can sit in the future of `now` (dispatch
        // charges the context switch before the span begins, and a
        // dispatch chain — thread sleeps/finishes immediately, next
        // one dispatches — stacks several switch windows at one
        // instant), so a preemption landing inside a pending window
        // legitimately has zero progress to charge. The underflow is
        // counted in the trace rather than wrapped: a silently huge
        // `elapsed` here is exactly the kind of accounting skew the
        // checked variant exists to prevent.
        let elapsed = match now.checked_since(ctx.span_start) {
            Some(d) => d,
            None => {
                if let Some(t) = &self.tracer {
                    t.bump("time_underflow");
                }
                SimDuration::ZERO
            }
        };
        let t = self.thread_mut(ctx.tid);
        if ctx.spinning {
            t.spin_time += elapsed;
        } else {
            let progress = elapsed.min(t.remaining);
            t.remaining -= progress;
            t.cpu_time += progress;
        }
    }

    /// The running thread on `cpu` completed its current segment.
    fn complete_segment(&mut self, cpu: CpuId, tid: ThreadId, now: SimTime, out: &mut ActionBuf) {
        // Charge the full remainder.
        {
            let t = self.thread_mut(tid);
            t.cpu_time += t.remaining;
            t.remaining = SimDuration::ZERO;
        }
        // Release a lock if the completed segment held one.
        let seg = self.thread(tid).current_segment().cloned();
        if matches!(seg, Some(Segment::NonPreemptible { .. })) {
            self.trace(now, cpu, TraceKind::NonPreemptibleLeave { tid: tid.0 });
        }
        if let Some(Segment::NonPreemptible { lock: Some(l), .. }) = seg {
            if self.thread(tid).holding == Some(l) {
                self.thread_mut(tid).holding = None;
                if let Some(next_holder) = self.locks.release(l, tid) {
                    self.grant_lock(next_holder, l, now, out);
                }
            }
        }
        self.thread_mut(tid).pc += 1;
        self.sync_remaining(tid);
        self.advance_thread(cpu, tid, now, out);
    }

    /// A spinning thread acquired `lock` after a handover.
    fn grant_lock(
        &mut self,
        tid: ThreadId,
        lock: crate::lock::LockId,
        now: SimTime,
        out: &mut ActionBuf,
    ) {
        // Find the CPU where the waiter spins.
        let waiter_cpu = self.find_cpu_of(tid);
        let Some(wcpu) = waiter_cpu else {
            // The waiter is queued (was preempted while spinning — not
            // possible in this model since spinning is non-preemptible
            // from the kernel's viewpoint), treat as ready.
            self.thread_mut(tid).holding = Some(lock);
            return;
        };
        let ctx = self.cpu(wcpu).and_then(|c| c.current).unwrap_or_else(|| {
            panic!("lock handover: waiter recorded on {wcpu:?} is not current there")
        });
        debug_assert!(ctx.spinning);
        // Charge spin time up to the handover (unless the CPU is
        // paused, in which case spin time was already charged).
        if !self.is_paused(wcpu) {
            self.charge_progress(wcpu, &ctx, now);
        }
        let t = self.thread_mut(tid);
        t.holding = Some(lock);
        t.state = ThreadState::Running;
        self.trace(now, wcpu, TraceKind::NonPreemptibleEnter { tid: tid.0 });
        if let Some(c) = self.cpu_mut(wcpu) {
            if let Some(cur) = c.current.as_mut() {
                cur.spinning = false;
                cur.span_start = now;
            }
        }
        out.push(KernelAction::Rearm { cpu: wcpu });
    }

    fn find_cpu_of(&self, tid: ThreadId) -> Option<CpuId> {
        for (i, c) in self.cpus.iter().enumerate() {
            if let Some(c) = c {
                if c.current.as_ref().map(|r| r.tid) == Some(tid) {
                    return Some(CpuId(i as u32));
                }
            }
        }
        None
    }

    /// Starts (or continues) executing `tid` on `cpu` from its current
    /// pc, processing zero-duration segments inline.
    fn advance_thread(&mut self, cpu: CpuId, tid: ThreadId, now: SimTime, out: &mut ActionBuf) {
        loop {
            let seg = self.thread(tid).current_segment().cloned();
            match seg {
                None => {
                    // Program complete.
                    let t = self.thread_mut(tid);
                    t.state = ThreadState::Finished;
                    t.finished_at = Some(now);
                    self.finished.push(tid);
                    out.push(KernelAction::ThreadFinished { tid });
                    self.clear_current(cpu, now);
                    self.dispatch_next(cpu, now, out);
                    return;
                }
                Some(Segment::Notify { target }) => {
                    self.thread_mut(tid).pc += 1;
                    self.sync_remaining(tid);
                    if self.threads.get(target.0 as usize).is_some()
                        && self.thread(target).state == ThreadState::Sleeping
                    {
                        // A kernel-level wake: reschedule IPI towards
                        // wherever the target lands.
                        self.wakeup(target, now, out);
                        out.push(KernelAction::SendIpi {
                            src: cpu,
                            dst: cpu,
                            vector: IrqVector::CALL_FUNCTION,
                        });
                    }
                }
                Some(Segment::Yield) => {
                    self.thread_mut(tid).pc += 1;
                    self.sync_remaining(tid);
                    let queue_nonempty = !self.cpu(cpu).map(|c| c.queue.is_empty()).unwrap_or(true);
                    if queue_nonempty {
                        // Requeue and switch.
                        self.thread_mut(tid).state = ThreadState::Ready;
                        self.clear_current(cpu, now);
                        if let Some(c) = self.cpu_mut(cpu) {
                            c.queue.push_back(tid);
                        }
                        self.dispatch_next(cpu, now, out);
                        return;
                    }
                }
                Some(Segment::Sleep(d)) => {
                    self.thread_mut(tid).pc += 1;
                    self.sync_remaining(tid);
                    self.thread_mut(tid).state = ThreadState::Sleeping;
                    out.push(KernelAction::ArmWakeup { tid, at: now + d });
                    self.clear_current(cpu, now);
                    self.dispatch_next(cpu, now, out);
                    return;
                }
                Some(Segment::NonPreemptible { dur: _, lock }) => {
                    if let Some(l) = lock {
                        if self.thread(tid).holding != Some(l) && !self.locks.acquire(l, tid) {
                            // Contended: spin.
                            self.thread_mut(tid).state = ThreadState::Spinning;
                            self.set_current(cpu, tid, now, true);
                            out.push(KernelAction::Rearm { cpu });
                            return;
                        }
                        self.thread_mut(tid).holding = Some(l);
                    }
                    self.trace(now, cpu, TraceKind::NonPreemptibleEnter { tid: tid.0 });
                    self.thread_mut(tid).state = ThreadState::Running;
                    self.set_current(cpu, tid, now, false);
                    out.push(KernelAction::Rearm { cpu });
                    return;
                }
                Some(Segment::UserCompute(_)) | Some(Segment::KernelPreemptible(_)) => {
                    // Deferred affinity migration: if this CPU is no
                    // longer in the thread's mask, move it now that we
                    // are at a scheduling point.
                    if !self.thread(tid).affinity.contains(cpu) {
                        self.clear_current(cpu, now);
                        self.thread_mut(tid).state = ThreadState::Ready;
                        self.make_ready(tid, now, out);
                        self.dispatch_next(cpu, now, out);
                        return;
                    }
                    self.thread_mut(tid).state = ThreadState::Running;
                    self.set_current(cpu, tid, now, false);
                    out.push(KernelAction::Rearm { cpu });
                    return;
                }
            }
        }
    }

    /// Sets `remaining` to the CPU time of the current segment (used
    /// when entering a segment fresh after the pc moved).
    fn sync_remaining(&mut self, tid: ThreadId) {
        let d = self
            .thread(tid)
            .current_segment()
            .map(|s| s.cpu_time())
            .unwrap_or(SimDuration::ZERO);
        self.thread_mut(tid).remaining = d;
    }

    fn set_current(&mut self, cpu: CpuId, tid: ThreadId, now: SimTime, spinning: bool) {
        let paused = self.is_paused(cpu);
        let c = self
            .cpu_mut(cpu)
            .unwrap_or_else(|| panic!("set_current of {tid:?} on unregistered {cpu:?}"));
        let slice_start = c
            .current
            .as_ref()
            .filter(|r| r.tid == tid)
            .map(|r| r.slice_start)
            .unwrap_or(now);
        c.current = Some(RunningCtx {
            tid,
            span_start: now,
            slice_start,
            spinning,
        });
        if !paused {
            c.meter.set_busy(now);
        }
    }

    fn clear_current(&mut self, cpu: CpuId, now: SimTime) {
        if let Some(c) = self.cpu_mut(cpu) {
            c.current = None;
            c.meter.set_idle(now);
        }
    }

    /// Dispatches the next queued thread on `cpu` (if runnable),
    /// attempting to steal work when the local queue is empty.
    fn dispatch_next(&mut self, cpu: CpuId, now: SimTime, out: &mut ActionBuf) {
        let Some(c) = self.cpu(cpu) else {
            return;
        };
        if !c.runnable() || c.current.is_some() {
            out.push(KernelAction::Rearm { cpu });
            return;
        }
        let next = {
            let c = self.cpu_mut(cpu).expect("checked");
            c.queue.pop_front()
        };
        let next = match next {
            Some(t) => Some(t),
            None => self.steal_work(cpu),
        };
        let Some(tid) = next else {
            out.push(KernelAction::Rearm { cpu });
            return;
        };
        // Context-switch cost: the new thread's span begins after it.
        let start = now + self.config.context_switch;
        self.advance_thread(cpu, tid, start, out);
        // Mark the CPU busy through the switch itself.
        if let Some(c) = self.cpu_mut(cpu) {
            if c.current.is_some() && !c.paused {
                c.meter.set_busy(now);
            }
        }
        out.push(KernelAction::Rearm { cpu });
    }

    /// Steals the most-recently-queued thread from the most loaded
    /// other CPU whose queued work may migrate to `cpu`.
    fn steal_work(&mut self, cpu: CpuId) -> Option<ThreadId> {
        let mut victim: Option<(usize, CpuId)> = None;
        for (i, c) in self.cpus.iter().enumerate() {
            let Some(c) = c else { continue };
            if CpuId(i as u32) == cpu || c.queue.is_empty() {
                continue;
            }
            // Only steal from queues with migratable work.
            let migratable = c
                .queue
                .iter()
                .any(|&t| self.thread(t).affinity.contains(cpu));
            if !migratable {
                continue;
            }
            let load = c.queue.len();
            if victim.map(|(l, _)| load > l).unwrap_or(true) {
                victim = Some((load, CpuId(i as u32)));
            }
        }
        let (_, vcpu) = victim?;
        // Take the last migratable entry (the cold end of the queue)
        // by index — no queue copy.
        let idx = {
            let c = self.cpu(vcpu).expect("victim exists");
            c.queue
                .iter()
                .rposition(|&t| self.thread(t).affinity.contains(cpu))?
        };
        self.cpu_mut(vcpu).expect("victim exists").queue.remove(idx)
    }

    /// Preempts the running thread on `cpu`, putting it at the back of
    /// the queue and dispatching the next thread.
    fn preempt_rotate(&mut self, cpu: CpuId, now: SimTime, out: &mut ActionBuf) {
        let Some(ctx) = self.cpu(cpu).and_then(|c| c.current) else {
            return;
        };
        self.trace(now, cpu, TraceKind::Preempt { tid: ctx.tid.0 });
        self.charge_progress(cpu, &ctx, now);
        self.thread_mut(ctx.tid).state = ThreadState::Ready;
        self.clear_current(cpu, now);
        if let Some(c) = self.cpu_mut(cpu) {
            c.queue.push_back(ctx.tid);
        }
        self.dispatch_next(cpu, now, out)
    }

    /// Count of finished threads.
    pub fn finished_count(&self) -> usize {
        self.finished.len()
    }

    /// IDs of finished threads in completion order.
    pub fn finished_threads(&self) -> &[ThreadId] {
        &self.finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const US: u64 = 1;

    fn cfg() -> KernelConfig {
        KernelConfig {
            timeslice: SimDuration::from_millis(3),
            context_switch: SimDuration::from_micros(2),
            wakeup_ipi: true,
        }
    }

    fn boot(cpus: u32) -> Kernel {
        let ids: Vec<CpuId> = (0..cpus).map(CpuId).collect();
        Kernel::new(cfg(), &ids)
    }

    /// Drives the kernel to quiescence, processing wakeups and
    /// decisions from a local event queue. Returns the final time.
    pub(super) fn drive(kernel: &mut Kernel, until: SimTime) -> SimTime {
        use taichi_sim::EventQueue;
        #[derive(Debug)]
        enum Ev {
            Decide(CpuId),
            Wake(ThreadId),
        }
        let mut q: EventQueue<Ev> = EventQueue::new();
        let arm = |k: &Kernel, q: &mut EventQueue<Ev>, cpu: CpuId, now: SimTime| {
            if let Some(t) = k.next_decision_time(cpu, now) {
                q.schedule(t.max(now), Ev::Decide(cpu));
            }
        };
        // Initial arm for all CPUs.
        let now = SimTime::ZERO;
        for cpu in kernel.known_cpus() {
            arm(kernel, &mut q, cpu, now);
        }
        let mut last = now;
        let mut acts = ActionBuf::new();
        while let Some((t, ev)) = q.pop() {
            if t > until {
                break;
            }
            last = t;
            acts.clear();
            match ev {
                Ev::Decide(cpu) => kernel.decide(cpu, t, &mut acts),
                Ev::Wake(tid) => kernel.wakeup(tid, t, &mut acts),
            }
            for a in acts.iter() {
                match a {
                    KernelAction::ArmWakeup { tid, at } => {
                        q.schedule(at, Ev::Wake(tid));
                    }
                    KernelAction::Rearm { cpu } => arm(kernel, &mut q, cpu, t),
                    KernelAction::SendIpi { .. } | KernelAction::ThreadFinished { .. } => {}
                }
            }
        }
        last
    }

    /// Spawn helper that feeds actions back into a fresh drive call.
    fn spawn_and_drive(kernel: &mut Kernel, progs: Vec<Program>, until: SimTime) {
        let all: CpuSet = kernel.known_cpus().into_iter().collect();
        let mut out = ActionBuf::new();
        for p in progs {
            let _tid = kernel.spawn(p, all, SimTime::ZERO, &mut out);
            out.clear();
        }
        drive(kernel, until);
    }

    #[test]
    fn single_thread_runs_to_completion() {
        let mut k = boot(1);
        let p = Program::new().compute(SimDuration::from_micros(100 * US));
        spawn_and_drive(&mut k, vec![p], SimTime::from_secs(1));
        assert_eq!(k.finished_count(), 1);
        let t = k.thread_info(ThreadId(0));
        assert_eq!(t.state, ThreadState::Finished);
        assert_eq!(t.cpu_time, SimDuration::from_micros(100));
        // Turnaround = context switch + compute.
        assert_eq!(t.turnaround().unwrap(), SimDuration::from_micros(102));
    }

    #[test]
    fn two_threads_share_one_cpu_fairly() {
        let mut k = boot(1);
        // Two 9 ms compute threads, 3 ms slice: expect interleaving so
        // both finish close together (within ~1 slice + overheads).
        let p = Program::new().compute(SimDuration::from_millis(9));
        spawn_and_drive(&mut k, vec![p.clone(), p], SimTime::from_secs(1));
        assert_eq!(k.finished_count(), 2);
        let f0 = k.thread_info(ThreadId(0)).finished_at.unwrap();
        let f1 = k.thread_info(ThreadId(1)).finished_at.unwrap();
        let gap = if f1 > f0 { f1 - f0 } else { f0 - f1 };
        assert!(
            gap <= SimDuration::from_millis(4),
            "unfair interleaving: gap {gap}"
        );
        // Combined ~18 ms of work on one CPU.
        assert!(f0.max(f1) >= SimTime::from_millis(18));
    }

    #[test]
    fn threads_spread_across_cpus() {
        let mut k = boot(4);
        let p = Program::new().compute(SimDuration::from_millis(5));
        spawn_and_drive(
            &mut k,
            vec![p.clone(), p.clone(), p.clone(), p],
            SimTime::from_secs(1),
        );
        assert_eq!(k.finished_count(), 4);
        // With 4 CPUs, all should finish around 5 ms (parallel), not 20.
        for i in 0..4u64 {
            let f = k.thread_info(ThreadId(i)).finished_at.unwrap();
            assert!(f < SimTime::from_millis(6), "thread {i} finished {f}");
        }
    }

    #[test]
    fn non_preemptible_defers_slice_preemption() {
        let mut k = boot(1);
        // Thread A: 10 ms non-preemptible. Thread B: 1 ms compute.
        // Despite the 3 ms slice, B cannot run until A's critical
        // section completes.
        let a = Program::new().then(Segment::nonpreemptible(SimDuration::from_millis(10)));
        let b = Program::new().compute(SimDuration::from_millis(1));
        spawn_and_drive(&mut k, vec![a, b], SimTime::from_secs(1));
        let fb = k.thread_info(ThreadId(1)).finished_at.unwrap();
        assert!(
            fb >= SimTime::from_millis(11),
            "B finished at {fb}, should wait for A's critical section"
        );
    }

    #[test]
    fn preemptible_kernel_work_is_preempted() {
        let mut k = boot(1);
        let a = Program::new().syscall(SimDuration::from_millis(10));
        let b = Program::new().compute(SimDuration::from_millis(1));
        spawn_and_drive(&mut k, vec![a, b], SimTime::from_secs(1));
        let fb = k.thread_info(ThreadId(1)).finished_at.unwrap();
        // B should run after A's first 3 ms slice, finishing ~4 ms.
        assert!(
            fb < SimTime::from_millis(6),
            "B finished at {fb}, preemption failed"
        );
    }

    #[test]
    fn sleep_and_wakeup() {
        let mut k = boot(1);
        let p = Program::new()
            .compute(SimDuration::from_micros(10))
            .sleep(SimDuration::from_millis(5))
            .compute(SimDuration::from_micros(10));
        spawn_and_drive(&mut k, vec![p], SimTime::from_secs(1));
        assert_eq!(k.finished_count(), 1);
        let t = k.thread_info(ThreadId(0));
        // Finish ≥ 5 ms due to the sleep; CPU time only 20 µs.
        assert!(t.finished_at.unwrap() >= SimTime::from_millis(5));
        assert_eq!(t.cpu_time, SimDuration::from_micros(20));
    }

    #[test]
    fn notify_wakes_sleeping_thread() {
        let mut k = boot(2);
        // Thread 0 sleeps "forever" (1 s); thread 1 notifies it after
        // 1 ms of compute. Thread 0 should finish well before 1 s? No —
        // notify wakes it from the *current* sleep, it re-enters ready.
        let sleeper = Program::new().sleep(SimDuration::from_secs(10));
        let all = CpuSet::range(0, 2);
        let t0 = k.spawn(sleeper, all, SimTime::ZERO, &mut ActionBuf::new());
        let notifier = Program::new()
            .compute(SimDuration::from_millis(1))
            .then(Segment::Notify { target: t0 });
        let _t1 = k.spawn(notifier, all, SimTime::ZERO, &mut ActionBuf::new());
        drive(&mut k, SimTime::from_secs(1));
        assert_eq!(k.finished_count(), 2);
        let f0 = k.thread_info(t0).finished_at.unwrap();
        assert!(
            f0 < SimTime::from_millis(3),
            "sleeper not woken early: {f0}"
        );
    }

    #[test]
    fn contended_lock_serializes_and_spins() {
        let mut k = boot(2);
        let l = crate::lock::LockId(7);
        let p = Program::new().critical_locked(SimDuration::from_millis(2), l);
        spawn_and_drive(&mut k, vec![p.clone(), p], SimTime::from_secs(1));
        assert_eq!(k.finished_count(), 2);
        let f0 = k.thread_info(ThreadId(0)).finished_at.unwrap();
        let f1 = k.thread_info(ThreadId(1)).finished_at.unwrap();
        // Serialized: the later one finishes ~2 ms after the earlier.
        let late = f0.max(f1);
        assert!(late >= SimTime::from_millis(4), "not serialized: {late}");
        // The loser spun for ~2 ms.
        let spin0 = k.thread_info(ThreadId(0)).spin_time;
        let spin1 = k.thread_info(ThreadId(1)).spin_time;
        let total_spin = spin0 + spin1;
        assert!(
            total_spin >= SimDuration::from_millis(1),
            "expected spinning, got {total_spin}"
        );
        assert_eq!(k.locks().total_contentions(), 1);
    }

    #[test]
    fn hotplug_lifecycle() {
        let mut k = boot(1);
        let v = CpuId(5);
        k.register_cpu(v, SimTime::ZERO);
        assert_eq!(k.cpu_phase(v), Some(CpuPhase::Offline));
        k.cpu_init(v);
        assert_eq!(k.cpu_phase(v), Some(CpuPhase::Booting));
        k.cpu_online(v, &mut ActionBuf::new());
        assert_eq!(k.cpu_phase(v), Some(CpuPhase::Online));
        // Now schedulable.
        let p = Program::new().compute(SimDuration::from_micros(10));
        let tid = k.spawn(p, CpuSet::single(v), SimTime::ZERO, &mut ActionBuf::new());
        drive(&mut k, SimTime::from_secs(1));
        assert_eq!(k.thread_info(tid).state, ThreadState::Finished);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn double_register_panics() {
        let mut k = boot(1);
        k.register_cpu(CpuId(5), SimTime::ZERO);
        k.register_cpu(CpuId(5), SimTime::ZERO);
    }

    #[test]
    fn pause_freezes_progress() {
        let mut k = boot(1);
        let p = Program::new().compute(SimDuration::from_millis(10));
        let tid = k.spawn(
            p,
            CpuSet::single(CpuId(0)),
            SimTime::ZERO,
            &mut ActionBuf::new(),
        );
        // Run 2 ms (context switch at 0, span starts at 2 µs).
        let t_pause = SimTime::from_millis(2);
        k.pause_cpu(CpuId(0), t_pause, &mut ActionBuf::new());
        let done = k.thread_info(tid).cpu_time;
        assert_eq!(done, SimDuration::from_nanos(2_000_000 - 2_000));
        // While paused there is no pending decision.
        assert!(k.next_decision_time(CpuId(0), t_pause).is_none());
        // Resume at 10 ms; remaining ~8 ms runs to ~18 ms.
        k.resume_cpu(CpuId(0), SimTime::from_millis(10), &mut ActionBuf::new());
        let next = k
            .next_decision_time(CpuId(0), SimTime::from_millis(10))
            .unwrap();
        assert_eq!(next.as_nanos(), 10_000_000 + (8_000_000 + 2_000));
    }

    #[test]
    fn paused_cpu_accepts_queued_work_and_runs_on_resume() {
        let mut k = boot(1);
        k.pause_cpu(CpuId(0), SimTime::ZERO, &mut ActionBuf::new());
        let p = Program::new().compute(SimDuration::from_micros(50));
        let mut acts = ActionBuf::new();
        let tid = k.spawn(p, CpuSet::single(CpuId(0)), SimTime::ZERO, &mut acts);
        // The kernel wants to kick the paused CPU via IPI.
        assert!(acts
            .iter()
            .any(|a| matches!(a, KernelAction::SendIpi { .. })));
        assert!(k.cpu_has_work(CpuId(0)));
        k.resume_cpu(CpuId(0), SimTime::from_micros(100), &mut ActionBuf::new());
        drive(&mut k, SimTime::from_secs(1));
        assert_eq!(k.thread_info(tid).state, ThreadState::Finished);
    }

    #[test]
    fn in_lock_context_detection() {
        let mut k = boot(1);
        let l = crate::lock::LockId(1);
        let p = Program::new()
            .compute(SimDuration::from_millis(1))
            .critical_locked(SimDuration::from_millis(5), l);
        k.spawn(
            p,
            CpuSet::single(CpuId(0)),
            SimTime::ZERO,
            &mut ActionBuf::new(),
        );
        // During compute: not in lock context.
        assert!(!k.in_lock_context(CpuId(0)));
        // Advance past the compute segment boundary.
        let t1 = SimTime::from_nanos(1_000_000 + 2_000);
        k.decide(CpuId(0), t1, &mut ActionBuf::new());
        assert!(k.in_lock_context(CpuId(0)));
    }

    #[test]
    fn work_stealing_balances() {
        let mut k = boot(2);
        // Pin nothing: 3 threads, 2 CPUs. The third should be stolen
        // when a CPU frees up... spawn all at once on both CPUs.
        let p = Program::new().compute(SimDuration::from_millis(2));
        spawn_and_drive(&mut k, vec![p.clone(), p.clone(), p], SimTime::from_secs(1));
        assert_eq!(k.finished_count(), 3);
        // Total makespan ≈ 4 ms (2+2 on one CPU, 2 on the other), not 6.
        let last = (0..3u64)
            .map(|i| k.thread_info(ThreadId(i)).finished_at.unwrap())
            .max()
            .unwrap();
        assert!(last < SimTime::from_millis(5), "makespan {last}");
    }

    #[test]
    fn utilization_metering() {
        let mut k = boot(1);
        let p = Program::new().compute(SimDuration::from_millis(10));
        k.spawn(
            p,
            CpuSet::single(CpuId(0)),
            SimTime::ZERO,
            &mut ActionBuf::new(),
        );
        drive(&mut k, SimTime::from_secs(1));
        // After completion the CPU went idle at ~10 ms. Utilization at
        // 20 ms ≈ 50%.
        let u = k.cpu_utilization(CpuId(0), SimTime::from_millis(20));
        assert!((u - 0.5).abs() < 0.02, "utilization {u}");
    }

    #[test]
    fn cpu_has_work_semantics() {
        let mut k = boot(2);
        assert!(!k.cpu_has_work(CpuId(0)));
        let p = Program::new().compute(SimDuration::from_millis(1));
        k.spawn(
            p,
            CpuSet::single(CpuId(0)),
            SimTime::ZERO,
            &mut ActionBuf::new(),
        );
        assert!(k.cpu_has_work(CpuId(0)));
        assert!(!k.cpu_has_work(CpuId(1)));
    }

    #[test]
    fn yield_rotates_queue() {
        let mut k = boot(1);
        let a = Program::new()
            .compute(SimDuration::from_micros(100))
            .then(Segment::Yield)
            .compute(SimDuration::from_micros(100));
        let b = Program::new().compute(SimDuration::from_micros(50));
        spawn_and_drive(&mut k, vec![a, b], SimTime::from_secs(1));
        // B must complete before A (A yields after its first segment).
        let fa = k.thread_info(ThreadId(0)).finished_at.unwrap();
        let fb = k.thread_info(ThreadId(1)).finished_at.unwrap();
        assert!(fb < fa, "yield did not rotate: A={fa} B={fb}");
    }

    #[test]
    fn decision_time_accounts_for_queue() {
        let mut k = boot(1);
        let long = Program::new().compute(SimDuration::from_millis(100));
        k.spawn(
            long,
            CpuSet::single(CpuId(0)),
            SimTime::ZERO,
            &mut ActionBuf::new(),
        );
        // Alone: decision at segment boundary.
        let t0 = k.next_decision_time(CpuId(0), SimTime::ZERO).unwrap();
        assert!(t0 > SimTime::from_millis(99));
        // With a second thread queued: decision at slice end.
        let second = Program::new().compute(SimDuration::from_millis(1));
        k.spawn(
            second,
            CpuSet::single(CpuId(0)),
            SimTime::ZERO,
            &mut ActionBuf::new(),
        );
        let t1 = k.next_decision_time(CpuId(0), SimTime::ZERO).unwrap();
        assert!(
            t1 <= SimTime::from_nanos(3_000_000 + 2_000),
            "slice-based decision expected, got {t1}"
        );
    }

    #[test]
    fn spinner_blocked_by_paused_holder_makes_no_progress() {
        // The §4.1 hazard: lock holder's CPU pauses; spinner burns CPU.
        let mut k = boot(2);
        let l = crate::lock::LockId(3);
        let holder = Program::new().critical_locked(SimDuration::from_millis(5), l);
        let spinner = Program::new().critical_locked(SimDuration::from_millis(1), l);
        let h = k.spawn(
            holder,
            CpuSet::single(CpuId(0)),
            SimTime::ZERO,
            &mut ActionBuf::new(),
        );
        // Let the holder start its critical section.
        k.decide(CpuId(0), SimTime::from_micros(2), &mut ActionBuf::new());
        assert!(k.in_lock_context(CpuId(0)));
        // Pause the holder's CPU (simulating a descheduled vCPU).
        k.pause_cpu(CpuId(0), SimTime::from_micros(10), &mut ActionBuf::new());
        // Spawn the spinner on CPU 1.
        let s = k.spawn(
            spinner,
            CpuSet::single(CpuId(1)),
            SimTime::from_micros(10),
            &mut ActionBuf::new(),
        );
        k.decide(CpuId(1), SimTime::from_micros(12), &mut ActionBuf::new());
        assert_eq!(k.thread_info(s).state, ThreadState::Spinning);
        // No decision pending anywhere: the system is stuck until the
        // holder's CPU resumes. This is the deadlock-ish hazard.
        assert!(k
            .next_decision_time(CpuId(1), SimTime::from_micros(12))
            .is_none());
        // Resume the holder; drive; both finish.
        k.resume_cpu(CpuId(0), SimTime::from_millis(1), &mut ActionBuf::new());
        drive(&mut k, SimTime::from_secs(1));
        assert_eq!(k.thread_info(h).state, ThreadState::Finished);
        assert_eq!(k.thread_info(s).state, ThreadState::Finished);
        // Spinner burned at least ~4 ms spinning.
        assert!(
            k.thread_info(s).spin_time >= SimDuration::from_millis(3),
            "spin time {}",
            k.thread_info(s).spin_time
        );
    }
}

#[cfg(test)]
mod affinity_tests {
    use super::tests::drive;
    use super::*;

    fn boot(cpus: u32) -> Kernel {
        let ids: Vec<CpuId> = (0..cpus).map(CpuId).collect();
        Kernel::new(KernelConfig::default(), &ids)
    }

    #[test]
    fn set_affinity_migrates_queued_thread() {
        let mut k = boot(2);
        // Occupy CPU 0 so the second spawn queues behind it.
        let long = Program::new().compute(SimDuration::from_millis(50));
        k.spawn(
            long,
            CpuSet::single(CpuId(0)),
            SimTime::ZERO,
            &mut ActionBuf::new(),
        );
        let short = Program::new().compute(SimDuration::from_micros(100));
        let tid = k.spawn(
            short,
            CpuSet::single(CpuId(0)),
            SimTime::ZERO,
            &mut ActionBuf::new(),
        );
        assert_eq!(k.cpu_load(CpuId(0)), 2);
        // Re-bind the queued thread to CPU 1: it migrates and runs now.
        let mut acts = ActionBuf::new();
        k.set_affinity(
            tid,
            CpuSet::single(CpuId(1)),
            SimTime::from_micros(10),
            &mut acts,
        );
        assert!(!acts.is_empty());
        assert_eq!(k.cpu_load(CpuId(0)), 1);
        assert_eq!(k.current_thread(CpuId(1)), Some(tid));
    }

    #[test]
    fn set_affinity_preempts_running_preemptible_thread() {
        let mut k = boot(2);
        let p = Program::new().compute(SimDuration::from_millis(10));
        let tid = k.spawn(
            p,
            CpuSet::single(CpuId(0)),
            SimTime::ZERO,
            &mut ActionBuf::new(),
        );
        assert_eq!(k.current_thread(CpuId(0)), Some(tid));
        k.set_affinity(
            tid,
            CpuSet::single(CpuId(1)),
            SimTime::from_millis(2),
            &mut ActionBuf::new(),
        );
        assert_eq!(k.current_thread(CpuId(0)), None);
        assert_eq!(k.current_thread(CpuId(1)), Some(tid));
        // Progress was preserved: ~2 ms consumed on CPU 0.
        assert!(k.thread_info(tid).cpu_time >= SimDuration::from_millis(1));
        drive(&mut k, SimTime::from_secs(1));
        assert_eq!(k.thread_info(tid).state, ThreadState::Finished);
        assert_eq!(k.thread_info(tid).cpu_time, SimDuration::from_millis(10));
    }

    #[test]
    fn set_affinity_defers_inside_nonpreemptible_routine() {
        let mut k = boot(2);
        let p = Program::new()
            .critical(SimDuration::from_millis(5))
            .compute(SimDuration::from_millis(1));
        let tid = k.spawn(
            p,
            CpuSet::single(CpuId(0)),
            SimTime::ZERO,
            &mut ActionBuf::new(),
        );
        // Mid-critical-section: the migration must not happen yet.
        k.set_affinity(
            tid,
            CpuSet::single(CpuId(1)),
            SimTime::from_millis(1),
            &mut ActionBuf::new(),
        );
        assert_eq!(k.current_thread(CpuId(0)), Some(tid), "deferred");
        // After the routine ends, the thread moves to CPU 1.
        drive(&mut k, SimTime::from_secs(1));
        assert_eq!(k.thread_info(tid).state, ThreadState::Finished);
        // The compute segment ran on CPU 1 (CPU 0 went idle at ~5 ms,
        // CPU 1's meter shows the final 1 ms).
        assert!(k.cpu_utilization(CpuId(1), SimTime::from_millis(10)) > 0.05);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_affinity_panics() {
        let mut k = boot(1);
        let tid = k.spawn(
            Program::new().compute(SimDuration::from_micros(1)),
            CpuSet::single(CpuId(0)),
            SimTime::ZERO,
            &mut ActionBuf::new(),
        );
        k.set_affinity(tid, CpuSet::EMPTY, SimTime::ZERO, &mut ActionBuf::new());
    }

    #[test]
    fn offline_idle_cpu_migrates_queue() {
        let mut k = boot(2);
        // CPU 1 idle with nothing; put two threads on CPU 0's queue,
        // then offline CPU 1 (trivially) and CPU 0 (refused: current).
        let p = Program::new().compute(SimDuration::from_millis(5));
        let all = CpuSet::range(0, 2);
        k.spawn(p.clone(), all, SimTime::ZERO, &mut ActionBuf::new());
        k.spawn(p.clone(), all, SimTime::ZERO, &mut ActionBuf::new());
        k.spawn(p, all, SimTime::ZERO, &mut ActionBuf::new());
        let ok0 = k.offline_cpu(CpuId(0), SimTime::from_micros(10), &mut ActionBuf::new());
        assert!(!ok0, "busy CPU must refuse to offline");
        // Drain CPU 1 by pausing-free check: CPU 1 has a current too.
        let ok1 = k.offline_cpu(CpuId(1), SimTime::from_micros(10), &mut ActionBuf::new());
        assert!(!ok1);
        drive(&mut k, SimTime::from_secs(1));
        assert_eq!(k.finished_count(), 3);
        // Now both are idle; offlining succeeds and the CPU reports
        // the Offline phase.
        let ok = k.offline_cpu(CpuId(1), SimTime::from_secs(1), &mut ActionBuf::new());
        assert!(ok);
        assert_eq!(k.cpu_phase(CpuId(1)), Some(CpuPhase::Offline));
    }

    #[test]
    fn offline_cpu_requeues_pending_threads() {
        let mut k = boot(2);
        // Pause CPU 1 so a queued thread sticks there without running.
        k.pause_cpu(CpuId(1), SimTime::ZERO, &mut ActionBuf::new());
        let p = Program::new().compute(SimDuration::from_micros(100));
        let tid = k.spawn(p, CpuSet::range(0, 2), SimTime::ZERO, &mut ActionBuf::new());
        // Force-queue a second thread onto CPU 1 by filling CPU 0.
        let long = Program::new().compute(SimDuration::from_millis(50));
        k.spawn(
            long,
            CpuSet::single(CpuId(0)),
            SimTime::ZERO,
            &mut ActionBuf::new(),
        );
        let _ = tid;
        // Resume and offline: any queue content must be migrated, and
        // the operation only succeeds when no current occupies it.
        k.resume_cpu(CpuId(1), SimTime::from_micros(5), &mut ActionBuf::new());
        drive(&mut k, SimTime::from_secs(1));
        assert_eq!(k.finished_count(), 2);
    }
}
