//! Fleet-scale rack simulation: many [`Machine`]s advanced in
//! conservative time epochs (ROADMAP item 1 — the paper's title says
//! *hyperscale clouds*, not "one SmartNIC").
//!
//! # Epoch model
//!
//! The rack advances in fixed-length epochs. Within an epoch every
//! machine is fully independent: it consumes only its own event queue,
//! its own RNG streams, and the east-west arrivals planned for it
//! *before* the epoch started. Cross-NIC traffic generated "during"
//! epoch `e` is delivered as rx injections in epoch `e + 1` under a
//! seeded network-latency model — a conservative (lookahead = one
//! epoch) synchronization, so no machine can observe another machine's
//! mid-epoch state. That independence is what lets the epoch-parallel
//! driver fan machines out across worker threads and still produce
//! **byte-identical** results for any worker count, either driver, and
//! both queue backends: the per-machine work is a pure function of
//! `(fleet seed, machine index, epoch plans)`, and everything the fold
//! exports is either accumulated in exact integer arithmetic
//! (commutative + associative, arrival order irrelevant) or folded on
//! the main thread in fixed epoch order.
//!
//! # Streaming aggregation and worker pooling
//!
//! Machines are *drained* at every epoch boundary
//! ([`Machine::drain_dp_recorders`]) and the deltas folded immediately
//! into one rack-level [`LatencyRecorder`] plus one machine-utilization
//! [`Histogram`] — per-machine histograms are never retained, so the
//! aggregation state is `O(workers)` histograms regardless of fleet
//! size. Per-epoch rack throughput feeds two [`OnlineStats`] (pre- and
//! post-storm), pushed on the main thread in epoch order so the float
//! accumulation is deterministic too.
//!
//! Each epoch-parallel worker owns a *pool* of machines and reports
//! one batched [`WorkerDelta`] per epoch (not one message per
//! machine); the main thread drains the delta into the rack fold and
//! recycles its backing storage back to the worker inside the next
//! epoch command. Plans are never shipped at all — they are a pure
//! function of `(cfg, epoch, congested)`, so each worker recomputes
//! its own shard locally. Steady-state fleet epochs therefore perform
//! `O(machines)` work with channel traffic and allocations bounded by
//! the worker count, not the machine or event count.

use std::sync::mpsc;

use taichi_core::audit::check_invariants;
use taichi_core::machine::{Machine, Mode};
use taichi_core::{MachineConfig, TenantConfig};
use taichi_cp::{TaskFactory, VmCreateRequest};
use taichi_dp::{ArrivalPattern, LatencyRecorder, TrafficGen};
use taichi_hw::{CpuId, IoKind, TenantId};
use taichi_sim::report::Table;
use taichi_sim::{Dist, FootprintProfile, Histogram, OnlineStats, Rng, SimDuration, SimTime};

/// Salt for the east-west flow-plan RNG streams.
const EW_SALT: u64 = 0xEA57_F10C;
/// Salt for the churn-plan RNG stream.
const CHURN_SALT: u64 = 0xC4A2_1234;
/// Violation strings retained verbatim (the rest are counted).
const MAX_VIOLATIONS: usize = 8;

/// Fleet configuration: rack size, epoch schedule, east-west traffic
/// model, load shaping, churn, and the startup storm.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Machines (SmartNICs) in the rack.
    pub machines: usize,
    /// Epochs to run.
    pub epochs: usize,
    /// Epoch length in simulated time.
    pub epoch_len: SimDuration,
    /// Fleet seed; machine `i` derives its own seed (and all its RNG
    /// streams) from this and `i` alone.
    pub seed: u64,
    /// Scheduling mode every machine runs in.
    pub mode: Mode,
    /// Base east-west flows each machine originates per epoch.
    pub ew_flows_per_machine: u32,
    /// Max packets per east-west flow (uniform in `1..=max`).
    pub ew_packets_per_flow: u32,
    /// Payload size of east-west packets.
    pub ew_size_bytes: u32,
    /// Minimum cross-NIC network latency.
    pub net_base_latency: SimDuration,
    /// Uniform cross-NIC latency jitter on top of the base.
    pub net_jitter: SimDuration,
    /// Diurnal period in epochs (0 disables the sinusoid).
    pub diurnal_period: usize,
    /// Diurnal modulation amplitude in `[0, 1)`.
    pub diurnal_amplitude: f64,
    /// Per-machine-per-epoch chance of a bursty epoch.
    pub burst_prob: f64,
    /// East-west volume multiplier during a bursty epoch.
    pub burst_factor: f64,
    /// Expected VM placements (creations) per epoch across the rack.
    pub churn_per_epoch: f64,
    /// Epoch at which a rack-wide VM startup storm fires (`None`
    /// disables it).
    pub storm_epoch: Option<usize>,
    /// VMs created on *every* machine at the storm epoch.
    pub storm_vms_per_machine: u32,
    /// Device density of churn/storm VM-create requests.
    pub vm_density: u32,
    /// Run the invariant checker on every machine at every epoch
    /// boundary.
    pub check_invariants: bool,
    /// Multi-tenant data-path configuration applied to every machine.
    /// The default (one tenant) keeps the fleet on the pre-tenant code
    /// path byte for byte: no extra generators, no extra RNG draws, no
    /// tenant columns in any export.
    pub tenants: TenantConfig,
    /// Memory footprint profile applied to every machine. Fleets
    /// default to [`FootprintProfile::Fleet`] (grow-on-demand backing
    /// storage) because a rack holds thousands of mostly-idle
    /// machines; every observable is byte-identical to
    /// [`FootprintProfile::Hot`] — the `fleet_identity` matrix pins
    /// that.
    pub footprint: FootprintProfile,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            machines: 16,
            epochs: 8,
            epoch_len: SimDuration::from_millis(2),
            seed: 0xF1EE7,
            mode: Mode::TaiChi,
            ew_flows_per_machine: 6,
            ew_packets_per_flow: 4,
            ew_size_bytes: 512,
            net_base_latency: SimDuration::from_micros(5),
            net_jitter: SimDuration::from_micros(20),
            diurnal_period: 8,
            diurnal_amplitude: 0.5,
            burst_prob: 0.15,
            burst_factor: 3.0,
            churn_per_epoch: 1.0,
            storm_epoch: None,
            storm_vms_per_machine: 2,
            vm_density: 2,
            check_invariants: true,
            tenants: TenantConfig::default(),
            footprint: FootprintProfile::Fleet,
        }
    }
}

// ---------------------------------------------------------------------
// TAICHI_FLEET_* environment knobs.
// ---------------------------------------------------------------------

/// Parses `TAICHI_FLEET_MACHINES` (a machine count >= 1).
pub fn parse_machines(s: &str) -> Result<usize, String> {
    match s.trim().parse::<usize>() {
        Ok(0) | Err(_) => Err(format!(
            "warning: TAICHI_FLEET_MACHINES={s:?} is not a valid machine \
             count (expected an integer >= 1); using the default"
        )),
        Ok(n) => Ok(n),
    }
}

/// Parses `TAICHI_FLEET_EPOCHS` (an epoch count >= 1).
pub fn parse_epochs(s: &str) -> Result<usize, String> {
    match s.trim().parse::<usize>() {
        Ok(0) | Err(_) => Err(format!(
            "warning: TAICHI_FLEET_EPOCHS={s:?} is not a valid epoch \
             count (expected an integer >= 1); using the default"
        )),
        Ok(n) => Ok(n),
    }
}

/// Parses `TAICHI_FLEET_EPOCH_US` (epoch length in microseconds >= 1).
pub fn parse_epoch_us(s: &str) -> Result<SimDuration, String> {
    match s.trim().parse::<u64>() {
        Ok(0) | Err(_) => Err(format!(
            "warning: TAICHI_FLEET_EPOCH_US={s:?} is not a valid epoch \
             length (expected microseconds >= 1); using the default"
        )),
        Ok(us) => Ok(SimDuration::from_micros(us)),
    }
}

/// Parses `TAICHI_FLEET_CHURN` (expected VM placements per epoch,
/// a finite value >= 0).
pub fn parse_churn(s: &str) -> Result<f64, String> {
    match s.trim().parse::<f64>() {
        Ok(v) if v.is_finite() && v >= 0.0 => Ok(v),
        _ => Err(format!(
            "warning: TAICHI_FLEET_CHURN={s:?} is not a valid churn rate \
             (expected a finite number >= 0); using the default"
        )),
    }
}

/// Parses `TAICHI_FLEET_STORM` (`off`, or the storm epoch index).
pub fn parse_storm(s: &str) -> Result<Option<usize>, String> {
    let t = s.trim();
    if t.eq_ignore_ascii_case("off") {
        return Ok(None);
    }
    t.parse::<usize>().map(Some).map_err(|_| {
        format!(
            "warning: TAICHI_FLEET_STORM={s:?} is not a valid storm epoch \
             (expected \"off\" or an epoch index); using the default"
        )
    })
}

impl FleetConfig {
    /// Overlays the `TAICHI_FLEET_*` environment knobs on this config.
    /// Each knob follows the workspace convention: unset keeps the
    /// current value, a valid value applies, and an invalid value
    /// keeps the current value with a one-shot warning to stderr.
    pub fn apply_env(&mut self) {
        use taichi_sim::env::env_parse_or_warn;
        if let Some(v) = env_parse_or_warn("TAICHI_FLEET_MACHINES", parse_machines) {
            self.machines = v;
        }
        if let Some(v) = env_parse_or_warn("TAICHI_FLEET_EPOCHS", parse_epochs) {
            self.epochs = v;
        }
        if let Some(v) = env_parse_or_warn("TAICHI_FLEET_EPOCH_US", parse_epoch_us) {
            self.epoch_len = v;
        }
        if let Some(v) = env_parse_or_warn("TAICHI_FLEET_CHURN", parse_churn) {
            self.churn_per_epoch = v;
        }
        if let Some(v) = env_parse_or_warn("TAICHI_FLEET_STORM", parse_storm) {
            self.storm_epoch = v;
        }
        self.footprint = FootprintProfile::from_env_or(self.footprint);
    }

    /// Start of epoch `e`.
    fn epoch_start(&self, e: usize) -> SimTime {
        SimTime::ZERO + self.epoch_len.saturating_mul(e as u64)
    }

    /// Per-machine seed: mixed so adjacent machines share no streams.
    fn machine_seed(&self, i: usize) -> u64 {
        let mut x = self
            .seed
            .wrapping_add((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x
    }
}

/// How the fleet advances its machines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FleetDriver {
    /// One thread, machines advanced in index order — the reference
    /// schedule the parallel driver must reproduce byte for byte.
    Sequential,
    /// Machines sharded across persistent worker threads (machine `i`
    /// lives on worker `i % workers`), synchronized at epoch
    /// boundaries.
    EpochParallel {
        /// Worker thread count (clamped to >= 1).
        workers: usize,
    },
}

// ---------------------------------------------------------------------
// Epoch plans (main thread, pure function of config + epoch + feedback).
// ---------------------------------------------------------------------

/// One cross-NIC packet to inject into a destination machine.
#[derive(Clone, Debug)]
struct InjectedArrival {
    at: SimTime,
    size: u32,
    dest_cpu: u32,
    /// Owning tenant (always 0 in a single-tenant fleet — no RNG draw
    /// happens for it, preserving the pre-tenant plan streams).
    tenant: u32,
}

/// Everything a machine must apply at an epoch boundary.
#[derive(Clone, Debug, Default)]
struct EpochPlan {
    flows: Vec<InjectedArrival>,
    vm_creates: u32,
}

/// Deterministic per-epoch load factor: diurnal sinusoid times the
/// machine's burst draw.
fn load_factor(cfg: &FleetConfig, epoch: usize, rng: &mut Rng) -> f64 {
    let diurnal = if cfg.diurnal_period == 0 {
        1.0
    } else {
        let phase = epoch as f64 / cfg.diurnal_period as f64;
        1.0 + cfg.diurnal_amplitude * (std::f64::consts::TAU * phase).sin()
    };
    let burst = if rng.chance(cfg.burst_prob) {
        cfg.burst_factor
    } else {
        1.0
    };
    diurnal * burst
}

/// Fills every machine's plan for `epoch` into `plans`, reusing the
/// vector's (and each plan's) backing storage across epochs.
/// `congested` is rack-level feedback from the previous epoch
/// (conservative: one epoch behind): when the rack dropped more than
/// 5% of its packets, every source backs off to 3/4 volume.
///
/// `shard = Some((w, workers))` keeps only the plans for machines
/// owned by worker `w` (`index % workers == w`), leaving the rest
/// empty. Every RNG draw still happens unconditionally — the streams
/// are consumed identically whether or not a destination is kept — so
/// the plan content for any machine is a pure function of
/// `(cfg, epoch, congested)` and each worker can recompute its own
/// shard locally instead of receiving it over a channel.
fn fill_plans(
    cfg: &FleetConfig,
    epoch: usize,
    congested: bool,
    plans: &mut Vec<EpochPlan>,
    shard: Option<(usize, usize)>,
) {
    let n = cfg.machines;
    plans.resize_with(n, EpochPlan::default);
    for p in plans.iter_mut() {
        p.flows.clear();
        p.vm_creates = 0;
    }
    let owned = |i: usize| match shard {
        Some((w, workers)) => i % workers == w,
        None => true,
    };
    let start = cfg.epoch_start(epoch);
    let epoch_ns = cfg.epoch_len.as_nanos();

    // East-west flows: source-major order, so the plan (and therefore
    // every destination's injection sequence) is independent of how
    // machines are sharded across workers.
    for src in 0..n {
        let mut rng = Rng::stream(
            cfg.seed ^ EW_SALT,
            (epoch as u64)
                .wrapping_mul(n as u64)
                .wrapping_add(src as u64),
        );
        let mut flows =
            (cfg.ew_flows_per_machine as f64 * load_factor(cfg, epoch, &mut rng)).round() as u64;
        if congested {
            flows = flows * 3 / 4;
        }
        for _ in 0..flows {
            if n < 2 {
                break;
            }
            let dst = (src + 1 + rng.next_below(n as u64 - 1) as usize) % n;
            let packets = 1 + rng.next_below(cfg.ew_packets_per_flow.max(1) as u64);
            // The whole flow belongs to one tenant; the draw is gated
            // so single-tenant plan streams stay byte-identical.
            let tenant = if cfg.tenants.is_multi() {
                rng.next_below(cfg.tenants.count as u64) as u32
            } else {
                0
            };
            // Flow arrivals spread uniformly over the delivery epoch,
            // each delayed by the network-latency draw. The draws are
            // unconditional; only the push is gated by ownership.
            for _ in 0..packets {
                let offset = rng.next_below(epoch_ns.max(1));
                let latency = cfg.net_base_latency
                    + SimDuration::from_nanos(rng.next_below(cfg.net_jitter.as_nanos().max(1)));
                let dest_cpu = rng.next_below(8) as u32;
                if owned(dst) {
                    plans[dst].flows.push(InjectedArrival {
                        at: start + SimDuration::from_nanos(offset) + latency,
                        size: cfg.ew_size_bytes,
                        dest_cpu,
                        tenant,
                    });
                }
            }
        }
    }

    // Placement churn: a seeded stream picks which machines gain a VM.
    let mut churn_rng = Rng::stream(cfg.seed ^ CHURN_SALT, epoch as u64);
    let mut creates = cfg.churn_per_epoch.floor() as u64;
    if churn_rng.chance(cfg.churn_per_epoch.fract()) {
        creates += 1;
    }
    for _ in 0..creates {
        let m = churn_rng.next_below(n as u64) as usize;
        if owned(m) {
            plans[m].vm_creates += 1;
        }
    }

    // Rack-wide startup storm (Fig. 17 at density): every machine
    // receives a burst of VM creations at the same epoch.
    if cfg.storm_epoch == Some(epoch) {
        for (i, p) in plans.iter_mut().enumerate() {
            if owned(i) {
                p.vm_creates += cfg.storm_vms_per_machine;
            }
        }
    }
}

/// Builds every machine's plan for `epoch` into a fresh vector — the
/// allocating convenience wrapper over [`fill_plans`].
#[cfg(test)]
fn make_plans(cfg: &FleetConfig, epoch: usize, congested: bool) -> Vec<EpochPlan> {
    let mut plans = Vec::new();
    fill_plans(cfg, epoch, congested, &mut plans, None);
    plans
}

// ---------------------------------------------------------------------
// Per-machine epoch execution (shared by both drivers).
// ---------------------------------------------------------------------

/// Per-epoch delta batched across every machine a worker owns. Plain
/// data (`Send`): the epoch-parallel driver ships exactly one of these
/// per worker per epoch (instead of one message per machine), and the
/// main thread sends it *back* inside the next [`EpochCmd`] so its
/// histogram buckets, tenant vector, and violation strings are reused
/// for the whole run. Everything in it is either exact integer
/// arithmetic or a capped sample of strings, so batching machines into
/// one delta cannot change any exported aggregate.
#[derive(Default)]
struct WorkerDelta {
    recorder: LatencyRecorder,
    /// Per-tenant latency deltas (empty in a single-tenant fleet).
    tenant_recorders: Vec<LatencyRecorder>,
    /// Per-machine utilization samples (permille), one per machine.
    util: Histogram,
    processed: u64,
    dropped: u64,
    events: u64,
    vm_creates: u64,
    injected: u64,
    /// First few violations verbatim (capped at [`MAX_VIOLATIONS`]).
    violations: Vec<String>,
    /// Total violations, including those over the cap.
    violation_count: u64,
    /// Max event-slab high-water mark across the worker's machines.
    slab_hwm: usize,
    /// Max rx/staging-ring high-water mark across the machines.
    ring_hwm: usize,
    /// Sum of resident backing bytes across the worker's machines,
    /// sampled at the epoch boundary.
    resident_bytes: u64,
}

/// One machine plus the cumulative-counter snapshots that turn its
/// monotone counters into per-epoch deltas.
struct MachineSlot {
    index: usize,
    machine: Machine,
    factory: TaskFactory,
    vm_seq: u64,
    last_processed: u64,
    last_dropped: u64,
    last_events: u64,
}

impl MachineSlot {
    fn new(cfg: &FleetConfig, index: usize) -> Self {
        let mcfg = MachineConfig {
            seed: cfg.machine_seed(index),
            tenants: cfg.tenants.clone(),
            footprint: cfg.footprint,
            ..MachineConfig::default()
        };
        let mut machine = Machine::new(mcfg, cfg.mode);
        // Baseline local (intra-NIC) load; east-west traffic rides on
        // top of this via `inject_rx`. In a multi-tenant fleet each
        // tenant originates its own share of the same aggregate load
        // (one generator — and one RNG stream — per tenant); with one
        // tenant the single pre-tenant generator is reproduced exactly.
        let dp = machine.services().len() as u32;
        let tenants = cfg.tenants.count.max(1);
        for t in 0..tenants {
            machine.add_traffic(
                TrafficGen::new(
                    ArrivalPattern::OnOff {
                        on_us: Dist::constant(200.0),
                        off_us: Dist::exponential(400.0),
                        burst_gap_us: Dist::exponential(2.5 * tenants as f64 / dp as f64),
                    },
                    Dist::constant(512.0),
                    IoKind::Network,
                    (0..dp).map(CpuId).collect(),
                )
                .with_tenant(TenantId(t)),
            );
        }
        MachineSlot {
            index,
            machine,
            factory: TaskFactory::default(),
            vm_seq: 0,
            last_processed: 0,
            last_dropped: 0,
            last_events: 0,
        }
    }

    /// Applies `plan`, advances to `end`, drains the epoch's stats
    /// into `out` (accumulating on top of whatever sibling machines
    /// already contributed this epoch). Steady state this allocates
    /// nothing: recorders drain in place and the counters are plain
    /// integer adds.
    fn run_epoch_into(
        &mut self,
        cfg: &FleetConfig,
        epoch: usize,
        end: SimTime,
        plan: &EpochPlan,
        out: &mut WorkerDelta,
    ) {
        let now = self.machine.now();
        let dp = self.machine.services().len() as u64;
        for f in &plan.flows {
            self.machine.inject_rx_for_tenant(
                f.at,
                IoKind::Network,
                f.size,
                CpuId(f.dest_cpu % dp.max(1) as u32),
                TenantId(f.tenant),
            );
        }
        for _ in 0..plan.vm_creates {
            let vm_id = ((self.index as u64) << 32) | self.vm_seq;
            self.vm_seq += 1;
            self.machine.schedule_vm_create(
                VmCreateRequest::at_density(vm_id, cfg.vm_density, now),
                &self.factory,
            );
        }
        self.machine.run_until(end);

        self.machine.drain_dp_recorders_into(&mut out.recorder);
        self.machine
            .drain_tenant_recorders_into(&mut out.tenant_recorders);
        let (mut processed, mut dropped) = (0u64, 0u64);
        for s in self.machine.services() {
            processed += s.processed();
            dropped += s.dropped();
        }
        let events = self.machine.events_processed();
        let util: f64 = {
            let services = self.machine.services();
            let sum: f64 = services.iter().map(|s| s.utilization(end)).sum();
            sum / services.len().max(1) as f64
        };
        if cfg.check_invariants {
            let report = check_invariants(&self.machine);
            out.violation_count += report.violations.len() as u64;
            for v in &report.violations {
                if out.violations.len() < MAX_VIOLATIONS {
                    out.violations.push(format!("machine {}: {v}", self.index));
                }
            }
        }
        out.processed += processed - self.last_processed;
        out.dropped += dropped - self.last_dropped;
        out.events += events - self.last_events;
        out.vm_creates += plan.vm_creates as u64;
        out.injected += plan.flows.len() as u64;
        out.util.record((util * 1000.0).round() as u64);
        self.last_processed = processed;
        self.last_dropped = dropped;
        self.last_events = events;

        // One epoch after the storm the creation burst has drained:
        // release the slab/ring/overflow capacity it forced. Both
        // drivers fire this at the same epoch; compaction touches only
        // backing storage, never observable state, so the identity
        // matrix pins that it changes no output byte.
        if cfg.storm_epoch.map(|s| s + 1) == Some(epoch) {
            self.machine.compact();
        }
        let (slab, ring) = self.machine.memory_high_watermarks();
        out.slab_hwm = out.slab_hwm.max(slab);
        out.ring_hwm = out.ring_hwm.max(ring);
        out.resident_bytes += self.machine.resident_bytes() as u64;
    }
}

// ---------------------------------------------------------------------
// Rack-level streaming fold.
// ---------------------------------------------------------------------

/// One epoch's rack-level aggregate row.
#[derive(Clone, Debug)]
pub struct EpochRow {
    /// Epoch index.
    pub epoch: usize,
    /// Packets completed across the rack this epoch.
    pub packets: u64,
    /// Packets dropped at rx rings this epoch.
    pub dropped: u64,
    /// Logical events processed this epoch.
    pub events: u64,
    /// East-west packets injected this epoch.
    pub injected: u64,
    /// VM creations issued this epoch.
    pub vm_creates: u64,
    /// p50 end-to-end latency of this epoch's completions (ns).
    pub p50_ns: u64,
    /// p99 end-to-end latency of this epoch's completions (ns).
    pub p99_ns: u64,
}

/// Streaming rack aggregate: everything is folded as deltas arrive
/// (exact integer arithmetic, so arrival order is irrelevant) or
/// pushed on the main thread in epoch order (the [`OnlineStats`]).
struct RackAccum {
    rack: LatencyRecorder,
    /// Per-tenant rack aggregates (empty in a single-tenant fleet).
    /// Integer-exact merges, so fold order is irrelevant — same
    /// worker-count-invariance argument as the merged recorder.
    tenant_rack: Vec<LatencyRecorder>,
    util_hist: Histogram,
    rows: Vec<EpochRow>,
    pre_storm: OnlineStats,
    post_storm: OnlineStats,
    violations: Vec<String>,
    violation_count: u64,
    slab_hwm: usize,
    ring_hwm: usize,
    // Current-epoch scratch (reset per epoch).
    epoch_rec: LatencyRecorder,
    epoch_processed: u64,
    epoch_dropped: u64,
    epoch_events: u64,
    epoch_injected: u64,
    epoch_vm_creates: u64,
    epoch_resident: u64,
    resident_bytes: u64,
}

impl RackAccum {
    fn new() -> Self {
        RackAccum {
            rack: LatencyRecorder::new(),
            tenant_rack: Vec::new(),
            util_hist: Histogram::new(),
            rows: Vec::new(),
            pre_storm: OnlineStats::new(),
            post_storm: OnlineStats::new(),
            violations: Vec::new(),
            violation_count: 0,
            slab_hwm: 0,
            ring_hwm: 0,
            epoch_rec: LatencyRecorder::new(),
            epoch_processed: 0,
            epoch_dropped: 0,
            epoch_events: 0,
            epoch_injected: 0,
            epoch_vm_creates: 0,
            epoch_resident: 0,
            resident_bytes: 0,
        }
    }

    /// Folds one worker's batched epoch delta and fully resets it, so
    /// the caller can recycle the delta (its histogram buckets, tenant
    /// vector, and string storage) into the next epoch. The only
    /// histograms alive are the rack aggregates, the current-epoch
    /// scratch, and one in-flight delta per worker.
    fn fold_worker(&mut self, d: &mut WorkerDelta) {
        d.recorder.drain_into(&mut self.epoch_rec);
        if self.tenant_rack.len() < d.tenant_recorders.len() {
            self.tenant_rack
                .resize_with(d.tenant_recorders.len(), LatencyRecorder::new);
        }
        for (agg, rec) in self
            .tenant_rack
            .iter_mut()
            .zip(d.tenant_recorders.iter_mut())
        {
            rec.drain_into(agg);
        }
        self.epoch_processed += d.processed;
        self.epoch_dropped += d.dropped;
        self.epoch_events += d.events;
        self.epoch_injected += d.injected;
        self.epoch_vm_creates += d.vm_creates;
        self.util_hist.merge(&d.util);
        self.violation_count += d.violation_count;
        for v in d.violations.drain(..) {
            if self.violations.len() < MAX_VIOLATIONS {
                self.violations.push(v);
            }
        }
        self.slab_hwm = self.slab_hwm.max(d.slab_hwm);
        self.ring_hwm = self.ring_hwm.max(d.ring_hwm);
        self.epoch_resident += d.resident_bytes;
        d.util.reset();
        d.processed = 0;
        d.dropped = 0;
        d.events = 0;
        d.injected = 0;
        d.vm_creates = 0;
        d.violation_count = 0;
        d.slab_hwm = 0;
        d.ring_hwm = 0;
        d.resident_bytes = 0;
    }

    /// Closes the current epoch: emits its row, folds its latency
    /// records into the rack aggregate, resets the scratch.
    fn close_epoch(&mut self, cfg: &FleetConfig, epoch: usize) {
        let row = EpochRow {
            epoch,
            packets: self.epoch_processed,
            dropped: self.epoch_dropped,
            events: self.epoch_events,
            injected: self.epoch_injected,
            vm_creates: self.epoch_vm_creates,
            p50_ns: self.epoch_rec.total_latency().percentile(50.0),
            p99_ns: self.epoch_rec.total_latency().percentile(99.0),
        };
        // Main-thread epoch-order pushes: deterministic float folds.
        match cfg.storm_epoch {
            Some(s) if epoch >= s => self.post_storm.push(row.packets as f64),
            _ => self.pre_storm.push(row.packets as f64),
        }
        self.rack.merge(&self.epoch_rec);
        self.epoch_rec.reset();
        self.epoch_processed = 0;
        self.epoch_dropped = 0;
        self.epoch_events = 0;
        self.epoch_injected = 0;
        self.epoch_vm_creates = 0;
        // The run-level figure is the *latest* epoch-boundary sample:
        // resident memory after the final epoch, post any compaction.
        self.resident_bytes = self.epoch_resident;
        self.epoch_resident = 0;
        self.rows.push(row);
    }

    /// True when the just-closed epoch saw rack-level congestion
    /// (> 5% of completed packets' worth of drops).
    fn congested(&self) -> bool {
        match self.rows.last() {
            Some(r) => r.dropped * 20 > r.packets,
            None => false,
        }
    }
}

/// Rack-level results of a fleet run.
#[derive(Debug)]
pub struct FleetResult {
    /// Config snapshot the run used.
    pub machines: usize,
    /// Epoch length the run used.
    pub epoch_len: SimDuration,
    /// Storm epoch (when one fired).
    pub storm_epoch: Option<usize>,
    /// Per-epoch rack rows.
    pub epochs: Vec<EpochRow>,
    /// Rack-wide latency aggregate (every completion of the run).
    pub rack: LatencyRecorder,
    /// Per-tenant rack-wide latency aggregates (empty unless the fleet
    /// ran multi-tenant machines).
    pub tenant_rack: Vec<LatencyRecorder>,
    /// Distribution of per-machine-per-epoch utilization (permille).
    pub util_permille: Histogram,
    /// Per-epoch rack throughput stats before the storm epoch.
    pub pre_storm: OnlineStats,
    /// Per-epoch rack throughput stats at/after the storm epoch.
    pub post_storm: OnlineStats,
    /// Epochs from the storm until rack throughput recovered to 90% of
    /// the pre-storm mean (`None`: no storm, or never recovered).
    pub recovery_epochs: Option<u64>,
    /// First few invariant violations verbatim (see
    /// [`FleetResult::violation_count`] for the total).
    pub violations: Vec<String>,
    /// Total invariant violations across all machines and epochs.
    pub violation_count: u64,
    /// Max event-slab high-water mark (slots) across every machine.
    /// Diagnostic only: the slab fill differs between queue backends
    /// (the wheel fuses same-deadline events into fewer slots), so
    /// this must never enter [`FleetResult::fingerprint`] or any
    /// identity-compared table.
    pub slab_high_watermark: usize,
    /// Max rx/staging-ring high-water mark (packets) across every
    /// machine. Diagnostic only, like the slab mark.
    pub ring_high_watermark: usize,
    /// Sum of per-machine resident backing bytes (event slab, wheel
    /// chunks, rings) sampled at the final epoch boundary. Diagnostic
    /// only: depends on footprint profile and backend.
    pub resident_bytes: u64,
}

impl FleetResult {
    /// Storm recovery: first epoch after the storm whose rack
    /// throughput is at least 90% of the pre-storm per-epoch mean
    /// (integer comparison — deterministic).
    fn compute_recovery(rows: &[EpochRow], storm: Option<usize>) -> Option<u64> {
        let s = storm?;
        let pre: Vec<u64> = rows.iter().take(s).map(|r| r.packets).collect();
        if pre.is_empty() {
            return None;
        }
        let baseline = pre.iter().sum::<u64>() / pre.len() as u64;
        rows.iter()
            .filter(|r| r.epoch > s && r.packets * 10 >= baseline * 9)
            .map(|r| (r.epoch - s) as u64)
            .next()
    }

    /// Deterministic fingerprint of everything the run exports; byte
    /// equality of two fingerprints plus the CSVs is the fleet
    /// identity contract. Float-valued entries are folded in exact
    /// epoch order and compared bit-for-bit.
    pub fn fingerprint(&self) -> Vec<u64> {
        let mut fp = vec![
            self.machines as u64,
            self.epochs.len() as u64,
            self.epochs.iter().map(|r| r.packets).sum::<u64>(),
            self.epochs.iter().map(|r| r.dropped).sum::<u64>(),
            self.epochs.iter().map(|r| r.events).sum::<u64>(),
            self.epochs.iter().map(|r| r.injected).sum::<u64>(),
            self.epochs.iter().map(|r| r.vm_creates).sum::<u64>(),
            self.rack.packets(),
            self.rack.bytes(),
            self.rack.total_latency().percentile(50.0),
            self.rack.total_latency().percentile(99.0),
            self.rack.total_latency().percentile(99.9),
            self.rack.total_latency().min(),
            self.rack.total_latency().max(),
            self.rack.total_latency().mean().to_bits(),
            self.util_permille.percentile(50.0),
            self.util_permille.max(),
            self.pre_storm.mean().to_bits(),
            self.post_storm.mean().to_bits(),
            self.recovery_epochs.map(|e| e + 1).unwrap_or(0),
            self.violation_count,
        ];
        for r in &self.epochs {
            fp.push(r.packets ^ (r.events << 1) ^ (r.p99_ns << 2));
        }
        // Tenant entries exist only for multi-tenant fleets, so the
        // single-tenant fingerprint is unchanged from the pre-tenant
        // contract.
        for rec in &self.tenant_rack {
            fp.push(rec.packets());
            fp.push(rec.total_latency().percentile(99.0));
        }
        fp
    }

    /// Per-tenant rack summary (one row per tenant; empty table rows
    /// for a single-tenant fleet).
    pub fn tenant_table(&self) -> Table {
        let mut t = Table::new(
            "fleet rack per-tenant aggregates",
            &["tenant", "packets", "p50 (ns)", "p99 (ns)", "p999 (ns)"],
        );
        for (i, rec) in self.tenant_rack.iter().enumerate() {
            let lat = rec.total_latency();
            t.row(&[
                i.to_string(),
                rec.packets().to_string(),
                lat.percentile(50.0).to_string(),
                lat.percentile(99.0).to_string(),
                lat.percentile(99.9).to_string(),
            ]);
        }
        t
    }

    /// Per-epoch rack table (one row per epoch) — the rack CSV.
    pub fn epoch_table(&self) -> Table {
        let mut t = Table::new(
            "fleet rack per-epoch aggregates",
            &[
                "epoch",
                "packets",
                "pps",
                "dropped",
                "events",
                "ew_injected",
                "vm_creates",
                "p50 (ns)",
                "p99 (ns)",
            ],
        );
        let secs = self.epoch_len.as_secs_f64();
        for r in &self.epochs {
            t.row(&[
                r.epoch.to_string(),
                r.packets.to_string(),
                format!("{:.1}", r.packets as f64 / secs),
                r.dropped.to_string(),
                r.events.to_string(),
                r.injected.to_string(),
                r.vm_creates.to_string(),
                r.p50_ns.to_string(),
                r.p99_ns.to_string(),
            ]);
        }
        t
    }

    /// Header of the identity-compared summary row.
    const SUMMARY_HEADER: [&'static str; 12] = [
        "machines",
        "epochs",
        "packets",
        "p50 (ns)",
        "p99 (ns)",
        "p999 (ns)",
        "max (ns)",
        "mean (ns)",
        "util p50 (pm)",
        "storm epoch",
        "recovery (epochs)",
        "violations",
    ];

    fn summary_cells(&self) -> Vec<String> {
        let lat = self.rack.total_latency();
        vec![
            self.machines.to_string(),
            self.epochs.len().to_string(),
            self.rack.packets().to_string(),
            lat.percentile(50.0).to_string(),
            lat.percentile(99.0).to_string(),
            lat.percentile(99.9).to_string(),
            lat.max().to_string(),
            format!("{:.1}", lat.mean()),
            self.util_permille.percentile(50.0).to_string(),
            self.storm_epoch
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into()),
            self.recovery_epochs
                .map(|e| e.to_string())
                .unwrap_or_else(|| "-".into()),
            self.violation_count.to_string(),
        ]
    }

    /// Whole-run rack summary table (a single row). Every column here
    /// is part of the identity contract (byte-identical across
    /// backends, drivers, worker counts, and footprint profiles) —
    /// memory diagnostics live in
    /// [`FleetResult::summary_table_with_mem`] instead.
    pub fn summary_table(&self) -> Table {
        let mut t = Table::new("fleet rack summary", &Self::SUMMARY_HEADER);
        t.row(&self.summary_cells());
        t
    }

    /// The summary row extended with memory diagnostics: slab/ring
    /// high-water marks, resident bytes per machine, and (when the
    /// caller measured one) the process peak RSS. These extra columns
    /// are *not* identity-compared — slab fill differs between queue
    /// backends, resident bytes between footprint profiles, and RSS
    /// between runs — so nothing here may feed
    /// [`FleetResult::fingerprint`].
    pub fn summary_table_with_mem(&self, peak_rss_kb: Option<u64>) -> Table {
        let mut header: Vec<&str> = Self::SUMMARY_HEADER.to_vec();
        header.extend([
            "slab hwm (slots)",
            "ring hwm (pkts)",
            "resident/machine (B)",
            "peak rss (kB)",
            "rss/machine (kB)",
        ]);
        let mut cells = self.summary_cells();
        let machines = self.machines.max(1) as u64;
        cells.push(self.slab_high_watermark.to_string());
        cells.push(self.ring_high_watermark.to_string());
        cells.push((self.resident_bytes / machines).to_string());
        cells.push(
            peak_rss_kb
                .map(|kb| kb.to_string())
                .unwrap_or_else(|| "-".into()),
        );
        cells.push(
            peak_rss_kb
                .map(|kb| (kb / machines).to_string())
                .unwrap_or_else(|| "-".into()),
        );
        let mut t = Table::new("fleet rack summary", &header);
        t.row(&cells);
        t
    }
}

// ---------------------------------------------------------------------
// Drivers.
// ---------------------------------------------------------------------

/// Runs the fleet to completion under `driver`.
pub fn run(cfg: &FleetConfig, driver: FleetDriver) -> FleetResult {
    match driver {
        FleetDriver::Sequential => run_sequential(cfg),
        FleetDriver::EpochParallel { workers } => run_epoch_parallel(cfg, workers.max(1)),
    }
}

fn finish(cfg: &FleetConfig, acc: RackAccum) -> FleetResult {
    let recovery = FleetResult::compute_recovery(&acc.rows, cfg.storm_epoch);
    FleetResult {
        machines: cfg.machines,
        epoch_len: cfg.epoch_len,
        storm_epoch: cfg.storm_epoch,
        epochs: acc.rows,
        rack: acc.rack,
        tenant_rack: acc.tenant_rack,
        util_permille: acc.util_hist,
        pre_storm: acc.pre_storm,
        post_storm: acc.post_storm,
        recovery_epochs: recovery,
        violations: acc.violations,
        violation_count: acc.violation_count,
        slab_high_watermark: acc.slab_hwm,
        ring_high_watermark: acc.ring_hwm,
        resident_bytes: acc.resident_bytes,
    }
}

fn run_sequential(cfg: &FleetConfig) -> FleetResult {
    let mut slots: Vec<MachineSlot> = (0..cfg.machines)
        .map(|i| MachineSlot::new(cfg, i))
        .collect();
    let mut acc = RackAccum::new();
    let mut plans: Vec<EpochPlan> = Vec::new();
    let mut scratch = WorkerDelta::default();
    for e in 0..cfg.epochs {
        fill_plans(cfg, e, acc.congested(), &mut plans, None);
        let end = cfg.epoch_start(e + 1);
        for slot in &mut slots {
            slot.run_epoch_into(cfg, e, end, &plans[slot.index], &mut scratch);
        }
        acc.fold_worker(&mut scratch);
        acc.close_epoch(cfg, e);
    }
    finish(cfg, acc)
}

/// Per-epoch command sent to a worker. Plans are *not* shipped: they
/// are a pure function of `(cfg, epoch, congested)` and each worker
/// recomputes its own shard locally ([`fill_plans`]). `recycle`
/// returns the worker's previous delta — drained by the fold — so its
/// backing storage is reused for the whole run.
struct EpochCmd {
    epoch: usize,
    end: SimTime,
    congested: bool,
    recycle: Option<WorkerDelta>,
}

fn run_epoch_parallel(cfg: &FleetConfig, workers: usize) -> FleetResult {
    let workers = workers.min(cfg.machines.max(1));
    let mut acc = RackAccum::new();
    std::thread::scope(|scope| {
        let (delta_tx, delta_rx) = mpsc::channel::<WorkerDelta>();
        let mut cmd_txs = Vec::with_capacity(workers);
        for w in 0..workers {
            let (cmd_tx, cmd_rx) = mpsc::channel::<EpochCmd>();
            cmd_txs.push(cmd_tx);
            let delta_tx = delta_tx.clone();
            let cfg = cfg.clone();
            scope.spawn(move || {
                // Machines are built *inside* the worker (`Machine` is
                // deliberately `!Send`); worker `w` owns every index
                // congruent to `w` mod `workers` and advances them in
                // ascending order each epoch. The plan buffer and the
                // recycled delta live for the whole run, so a
                // steady-state epoch performs O(machines) work with
                // no per-event allocation.
                let mut slots: Vec<MachineSlot> = (w..cfg.machines)
                    .step_by(workers)
                    .map(|i| MachineSlot::new(&cfg, i))
                    .collect();
                let mut plans: Vec<EpochPlan> = Vec::new();
                while let Ok(cmd) = cmd_rx.recv() {
                    let mut delta = cmd.recycle.unwrap_or_default();
                    fill_plans(
                        &cfg,
                        cmd.epoch,
                        cmd.congested,
                        &mut plans,
                        Some((w, workers)),
                    );
                    for slot in &mut slots {
                        slot.run_epoch_into(
                            &cfg,
                            cmd.epoch,
                            cmd.end,
                            &plans[slot.index],
                            &mut delta,
                        );
                    }
                    if delta_tx.send(delta).is_err() {
                        return;
                    }
                }
            });
        }
        drop(delta_tx);
        // Drained deltas waiting to ride back out on the next command.
        let mut recycled: Vec<WorkerDelta> = Vec::new();
        for e in 0..cfg.epochs {
            let congested = acc.congested();
            let end = cfg.epoch_start(e + 1);
            for tx in &cmd_txs {
                tx.send(EpochCmd {
                    epoch: e,
                    end,
                    congested,
                    recycle: recycled.pop(),
                })
                .expect("worker alive while commands pending");
            }
            // Fold worker deltas as they arrive: every exported
            // aggregate is integer-exact (order-free), so arrival
            // order is irrelevant — one message per worker per epoch.
            for _ in 0..workers {
                let mut delta = delta_rx.recv().expect("every worker reports each epoch");
                acc.fold_worker(&mut delta);
                recycled.push(delta);
            }
            acc.close_epoch(cfg, e);
        }
        drop(cmd_txs); // workers exit on channel close
    });
    finish(cfg, acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FleetConfig {
        FleetConfig {
            machines: 4,
            epochs: 3,
            epoch_len: SimDuration::from_micros(500),
            storm_epoch: Some(1),
            ..FleetConfig::default()
        }
    }

    #[test]
    fn plans_are_reproducible_and_shard_independent() {
        let cfg = tiny();
        let a = make_plans(&cfg, 2, false);
        let b = make_plans(&cfg, 2, false);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.flows.len(), y.flows.len());
            assert_eq!(x.vm_creates, y.vm_creates);
            for (f, g) in x.flows.iter().zip(&y.flows) {
                assert_eq!(f.at, g.at);
                assert_eq!(f.dest_cpu, g.dest_cpu);
            }
        }
        // Congestion feedback reduces (or keeps) volume.
        let c = make_plans(&cfg, 2, true);
        let total = |ps: &[EpochPlan]| ps.iter().map(|p| p.flows.len()).sum::<usize>();
        assert!(total(&c) <= total(&a));
    }

    #[test]
    fn sharded_fill_plans_partition_the_full_plan() {
        let cfg = FleetConfig {
            churn_per_epoch: 3.0,
            ..tiny()
        };
        // Storm epoch 1 exercises the vm_create path too.
        for epoch in [0, 1, 2] {
            let full = make_plans(&cfg, epoch, false);
            for workers in [1, 2, 3] {
                let mut shard = Vec::new();
                for w in 0..workers {
                    fill_plans(&cfg, epoch, false, &mut shard, Some((w, workers)));
                    for (i, (got, want)) in shard.iter().zip(&full).enumerate() {
                        if i % workers == w {
                            assert_eq!(got.vm_creates, want.vm_creates);
                            assert_eq!(got.flows.len(), want.flows.len());
                            for (f, g) in got.flows.iter().zip(&want.flows) {
                                assert_eq!(f.at, g.at);
                                assert_eq!(f.size, g.size);
                                assert_eq!(f.dest_cpu, g.dest_cpu);
                                assert_eq!(f.tenant, g.tenant);
                            }
                        } else {
                            assert!(got.flows.is_empty(), "unowned machine {i} got flows");
                            assert_eq!(got.vm_creates, 0);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn footprint_profiles_share_one_fingerprint() {
        // No storm: the post-storm compact would converge both
        // profiles' backing storage and mask the reservation gap.
        let hot = FleetConfig {
            footprint: FootprintProfile::Hot,
            storm_epoch: None,
            ..tiny()
        };
        let fleet = FleetConfig {
            footprint: FootprintProfile::Fleet,
            storm_epoch: None,
            ..tiny()
        };
        let a = run(&hot, FleetDriver::Sequential);
        let b = run(&fleet, FleetDriver::Sequential);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.epoch_table().to_csv(), b.epoch_table().to_csv());
        // The footprint profile *does* change resident memory — that
        // is its whole point — just never an observable.
        assert!(
            b.resident_bytes < a.resident_bytes,
            "fleet profile must shrink backing storage ({} vs {})",
            b.resident_bytes,
            a.resident_bytes
        );
    }

    #[test]
    fn storm_epoch_plans_a_creation_burst_everywhere() {
        let cfg = tiny();
        let storm = make_plans(&cfg, 1, false);
        for p in &storm {
            assert!(p.vm_creates >= cfg.storm_vms_per_machine);
        }
    }

    #[test]
    fn sequential_run_produces_rows_and_aggregates() {
        let cfg = tiny();
        let r = run(&cfg, FleetDriver::Sequential);
        assert_eq!(r.epochs.len(), 3);
        assert!(r.rack.packets() > 0, "rack must complete packets");
        assert_eq!(
            r.rack.packets(),
            r.epochs.iter().map(|e| e.packets).sum::<u64>(),
            "rack aggregate must equal the per-epoch fold"
        );
        assert_eq!(r.violation_count, 0, "{:?}", r.violations);
        assert_eq!(r.util_permille.count(), (cfg.machines * cfg.epochs) as u64);
        // CSV renders.
        assert!(r.epoch_table().to_csv().lines().count() > 3);
        assert!(r.summary_table().to_csv().lines().count() == 2);
    }

    #[test]
    fn multi_tenant_fleet_aggregates_per_tenant_and_stays_conserved() {
        let cfg = FleetConfig {
            tenants: TenantConfig {
                count: 2,
                weights: vec![3, 1],
                ..TenantConfig::default()
            },
            storm_epoch: None,
            ..tiny()
        };
        let r = run(&cfg, FleetDriver::Sequential);
        assert_eq!(r.violation_count, 0, "{:?}", r.violations);
        assert_eq!(r.tenant_rack.len(), 2);
        let per_tenant: u64 = r.tenant_rack.iter().map(|t| t.packets()).sum();
        assert_eq!(
            per_tenant,
            r.rack.packets(),
            "tenant recorders must partition the rack aggregate"
        );
        assert!(per_tenant > 0, "both tenants must complete packets");
        // Worker-count invariance holds for tenant aggregates too.
        let p = run(&cfg, FleetDriver::EpochParallel { workers: 3 });
        assert_eq!(p.fingerprint(), r.fingerprint());
        // The tenant table renders one row per tenant.
        assert_eq!(r.tenant_table().to_csv().lines().count(), 3);
        // Single-tenant fleets export no tenant entries at all.
        let single = run(&tiny(), FleetDriver::Sequential);
        assert!(single.tenant_rack.is_empty());
        assert_eq!(single.tenant_table().to_csv().lines().count(), 1);
    }

    #[test]
    fn env_knob_parsers_accept_and_reject() {
        assert_eq!(parse_machines("64"), Ok(64));
        assert!(parse_machines("0").is_err());
        assert!(parse_machines("lots").unwrap_err().contains("machine"));
        assert_eq!(parse_epochs(" 12 "), Ok(12));
        assert!(parse_epochs("-3").is_err());
        assert_eq!(parse_epoch_us("250"), Ok(SimDuration::from_micros(250)));
        assert!(parse_epoch_us("0").is_err());
        assert_eq!(parse_churn("1.5"), Ok(1.5));
        assert!(parse_churn("NaN").is_err());
        assert!(parse_churn("-1").is_err());
        assert_eq!(parse_storm("off"), Ok(None));
        assert_eq!(parse_storm("4"), Ok(Some(4)));
        assert!(parse_storm("sometime").is_err());
    }

    // Single test for everything that mutates TAICHI_FLEET_* env vars:
    // they are process-global, and sibling tests run in parallel.
    #[test]
    fn env_overlay_applies_valid_values_and_warns_on_bad_ones() {
        use taichi_sim::env::{reset_warned, warn_once};
        for var in [
            "TAICHI_FLEET_MACHINES",
            "TAICHI_FLEET_EPOCHS",
            "TAICHI_FLEET_EPOCH_US",
            "TAICHI_FLEET_CHURN",
            "TAICHI_FLEET_STORM",
        ] {
            reset_warned(var);
            std::env::set_var(var, "bogus!");
        }
        let mut cfg = FleetConfig::default();
        let before = cfg.clone();
        cfg.apply_env();
        assert_eq!(cfg.machines, before.machines);
        assert_eq!(cfg.epochs, before.epochs);
        assert_eq!(cfg.epoch_len, before.epoch_len);
        assert_eq!(cfg.churn_per_epoch, before.churn_per_epoch);
        assert_eq!(cfg.storm_epoch, before.storm_epoch);
        for var in [
            "TAICHI_FLEET_MACHINES",
            "TAICHI_FLEET_EPOCHS",
            "TAICHI_FLEET_EPOCH_US",
            "TAICHI_FLEET_CHURN",
            "TAICHI_FLEET_STORM",
        ] {
            // The one-shot warning already fired for this var, so a
            // second emission attempt reports "already warned".
            assert!(
                !warn_once(var, "probe"),
                "{var} must have warned during apply_env"
            );
            std::env::remove_var(var);
            reset_warned(var);
        }

        // Valid values apply (same test: the vars are process-global).
        std::env::set_var("TAICHI_FLEET_MACHINES", "9");
        std::env::set_var("TAICHI_FLEET_STORM", "off");
        let mut cfg = FleetConfig {
            storm_epoch: Some(3),
            ..FleetConfig::default()
        };
        cfg.apply_env();
        std::env::remove_var("TAICHI_FLEET_MACHINES");
        std::env::remove_var("TAICHI_FLEET_STORM");
        assert_eq!(cfg.machines, 9);
        assert_eq!(cfg.storm_epoch, None);
    }
}
