//! Steady-state allocation budget for pooled fleet epochs.
//!
//! The pooled `EpochParallel` driver promises that once a rack is
//! warm, each additional epoch costs **O(machines)** allocator events
//! — one recycled `WorkerDelta` ping-pong per worker plus bounded
//! per-machine bookkeeping — never O(events): plan vectors, epoch
//! scratch, recorders, and channel messages are all reused, and every
//! simulated event runs inside preallocated (or lazily-grown, then
//! stable) machine storage.
//!
//! Measured differentially so fixed costs cancel: run the same rack
//! twice, once for `BASE_EPOCHS` and once for `BASE_EPOCHS + EXTRA`
//! epochs, under the counting global allocator. The difference is the
//! marginal cost of `EXTRA` steady-state epochs — thread spawns, rack
//! construction, machine warm-up, and result assembly appear in both
//! runs and subtract out (up to the small O(epochs) result rows).
//!
//! This lives in its own single-test integration binary because the
//! counting allocator's counters are process-global: a concurrent test
//! in the same process would pollute the measurement.

use taichi_fleet::{run, FleetConfig, FleetDriver};
use taichi_sim::alloc::{self, CountingAlloc};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const MACHINES: usize = 64;
const BASE_EPOCHS: usize = 2;
const EXTRA_EPOCHS: usize = 4;

fn config(epochs: usize) -> FleetConfig {
    FleetConfig {
        machines: MACHINES,
        epochs,
        churn_per_epoch: 2.0,
        // No storm: the storm's rack-wide VM creation burst and the
        // post-storm compact() are deliberate, bounded allocation
        // spikes; the budget here pins the steady state.
        storm_epoch: None,
        ..FleetConfig::default()
    }
}

#[test]
fn steady_state_epochs_allocate_per_machine_not_per_event() {
    assert!(alloc::is_installed(), "counting allocator must be global");
    let driver = FleetDriver::EpochParallel { workers: 2 };

    // Warm-up run so lazily initialized process state (thread-pool
    // bookkeeping, environment caches) does not bill the first
    // measured run.
    let _ = run(&config(BASE_EPOCHS), driver);

    let before_short = alloc::snapshot();
    let short = run(&config(BASE_EPOCHS), driver);
    let short_delta = alloc::snapshot().since(before_short);

    let before_long = alloc::snapshot();
    let long = run(&config(BASE_EPOCHS + EXTRA_EPOCHS), driver);
    let long_delta = alloc::snapshot().since(before_long);

    assert_eq!(short.violation_count, 0);
    assert_eq!(long.violation_count, 0);

    // The marginal epochs must be doing real per-event work, or the
    // O(machines) bound below would be vacuous.
    let short_events: u64 = short.epochs.iter().map(|r| r.events).sum();
    let long_events: u64 = long.epochs.iter().map(|r| r.events).sum();
    let extra_events = long_events - short_events;
    assert!(
        extra_events > 100_000,
        "marginal epochs simulated too little: {extra_events} events"
    );

    let extra_allocs = long_delta
        .allocation_events()
        .saturating_sub(short_delta.allocation_events());

    // Budget: a small constant per machine per marginal epoch. The
    // real costs are the per-worker delta recycling (O(workers) ≪
    // O(machines)), per-plan flow/VM pushes that exceed a previous
    // epoch's high-water capacity, diurnal load growth re-sizing
    // machine slabs toward their plateau, and O(epochs) result rows.
    // 32 events per machine-epoch gives those room while sitting three
    // orders of magnitude below the per-event regime (~7k events per
    // machine-epoch here).
    let budget = (MACHINES * EXTRA_EPOCHS * 32) as u64;
    eprintln!(
        "marginal cost of {EXTRA_EPOCHS} epochs x {MACHINES} machines: \
         {extra_allocs} allocator events over {extra_events} simulated \
         events (budget {budget})"
    );
    assert!(
        extra_allocs <= budget,
        "steady-state fleet epochs allocated O(events): {extra_allocs} \
         allocator events for {EXTRA_EPOCHS} marginal epochs x {MACHINES} \
         machines ({extra_events} simulated events; budget {budget})"
    );
}
