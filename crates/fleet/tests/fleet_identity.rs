//! Fleet determinism matrix: the rack-level CSV and aggregate
//! fingerprint must be **byte-identical** across
//! `{wheel, heap}` queue backends × `{skip on, skip off}` ×
//! `{sequential, epoch-parallel}` drivers × `{1, 4}` workers ×
//! `{hot, fleet}` footprint profiles.
//!
//! This is the fleet analogue of `queue_backends.rs`: machine-level
//! identity says one NIC's exports don't depend on the scheduling
//! core's implementation; fleet identity additionally says the rack
//! fold doesn't depend on how machines are sharded across worker
//! threads or in what order their epoch deltas arrive.
//!
//! Kept as a single `#[test]` on purpose: `TAICHI_QUEUE` and
//! `TAICHI_SKIP` are process-global environment variables, and sibling
//! tests running concurrently in this binary would race on them.

use taichi_fleet::{run, FleetConfig, FleetDriver};
use taichi_sim::{FootprintProfile, QueueBackend, SimDuration};

fn config() -> FleetConfig {
    FleetConfig {
        machines: 6,
        epochs: 5,
        epoch_len: SimDuration::from_millis(2),
        seed: 0x0F1E_E71D,
        churn_per_epoch: 1.5,
        storm_epoch: Some(2),
        storm_vms_per_machine: 2,
        check_invariants: true,
        ..FleetConfig::default()
    }
}

struct Artifacts {
    fingerprint: Vec<u64>,
    epoch_csv: String,
    summary_csv: String,
}

fn collect(
    backend: QueueBackend,
    skip: &str,
    driver: FleetDriver,
    footprint: FootprintProfile,
) -> Artifacts {
    std::env::set_var(
        "TAICHI_QUEUE",
        match backend {
            QueueBackend::Wheel => "wheel",
            QueueBackend::Heap => "heap",
        },
    );
    std::env::set_var("TAICHI_SKIP", skip);
    assert_eq!(QueueBackend::from_env(), backend, "selector must resolve");
    let cfg = FleetConfig {
        footprint,
        ..config()
    };
    let result = run(&cfg, driver);
    std::env::remove_var("TAICHI_QUEUE");
    std::env::remove_var("TAICHI_SKIP");
    assert_eq!(
        result.violation_count, 0,
        "invariants must hold on every machine at every epoch boundary \
         ({backend:?}/skip={skip}/{driver:?}/{footprint:?}): {:?}",
        result.violations
    );
    Artifacts {
        fingerprint: result.fingerprint(),
        epoch_csv: result.epoch_table().to_csv(),
        summary_csv: result.summary_table().to_csv(),
    }
}

#[test]
fn rack_artifacts_are_byte_identical_across_the_matrix() {
    let drivers = [
        FleetDriver::Sequential,
        FleetDriver::EpochParallel { workers: 1 },
        FleetDriver::EpochParallel { workers: 4 },
    ];
    let cells = [
        (QueueBackend::Wheel, "on"),
        (QueueBackend::Wheel, "off"),
        (QueueBackend::Heap, "on"),
        (QueueBackend::Heap, "off"),
    ];

    let profiles = [FootprintProfile::Fleet, FootprintProfile::Hot];

    // Reference: the production cell under the reference driver.
    let baseline = collect(cells[0].0, cells[0].1, drivers[0], profiles[0]);
    assert!(
        baseline.epoch_csv.lines().count() == config().epochs + 1,
        "one CSV row per epoch plus the header"
    );
    // The run must actually exercise the fleet: east-west injections
    // and a storm both show up in the CSV.
    assert!(baseline.epoch_csv.contains(','), "CSV renders");

    for &(backend, skip) in &cells {
        for &driver in &drivers {
            for &footprint in &profiles {
                let other = collect(backend, skip, driver, footprint);
                assert_eq!(
                    baseline.fingerprint, other.fingerprint,
                    "aggregate fingerprint differs: wheel/skip=on/Sequential/Fleet \
                     vs {backend:?}/skip={skip}/{driver:?}/{footprint:?}"
                );
                assert_eq!(
                    baseline.epoch_csv, other.epoch_csv,
                    "rack CSV differs: wheel/skip=on/Sequential/Fleet \
                     vs {backend:?}/skip={skip}/{driver:?}/{footprint:?}"
                );
                assert_eq!(
                    baseline.summary_csv, other.summary_csv,
                    "summary CSV differs: wheel/skip=on/Sequential/Fleet \
                     vs {backend:?}/skip={skip}/{driver:?}/{footprint:?}"
                );
            }
        }
    }
}
