//! Quickstart: co-schedule control-plane tasks with a loaded data
//! plane and compare Tai Chi against the static-partitioning baseline.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use taichi::core::machine::{Machine, Mode};
use taichi::core::metrics::RunReport;
use taichi::core::MachineConfig;
use taichi::cp::SynthCp;
use taichi::dp::{ArrivalPattern, TrafficGen};
use taichi::hw::{CpuId, IoKind};
use taichi::sim::{Dist, Rng, SimTime};

/// Bursty traffic averaging ~30 % across the 8 data-plane CPUs.
fn traffic() -> TrafficGen {
    TrafficGen::new(
        ArrivalPattern::OnOff {
            on_us: Dist::constant(200.0),
            off_us: Dist::exponential(400.0),
            burst_gap_us: Dist::exponential(0.21),
        },
        Dist::constant(512.0),
        IoKind::Network,
        (0..8).map(CpuId).collect(),
    )
}

fn run(mode: Mode) -> RunReport {
    // `--trace` records the scheduler's decisions and dumps them as a
    // TSV per mode (see README: scheduler tracing).
    let mut cfg = MachineConfig::default();
    cfg.trace.enabled = std::env::args().any(|a| a == "--trace");
    let mut machine = Machine::new(cfg, mode);
    machine.add_traffic(traffic());

    // 16 concurrent control-plane tasks, ~50 ms of CPU each, mixing
    // user compute, syscalls and non-preemptible kernel routines.
    // Nothing in these programs knows Tai Chi exists: under Tai Chi
    // they additionally run on vCPUs purely via CPU affinity.
    let synth = SynthCp::default();
    let mut rng = Rng::new(7);
    machine.schedule_cp_batch(synth.workload(16, &mut rng), SimTime::ZERO);

    machine.run_until(SimTime::from_secs(2));
    if let Some(tsv) = machine.trace_tsv() {
        let path = format!("quickstart_{mode}.trace.tsv");
        match std::fs::write(&path, tsv) {
            Ok(()) => println!("[trace] {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
    RunReport::collect(&machine)
}

fn main() {
    println!("simulating a 12-CPU SmartNIC (8 DP + 4 CP) for 2 s ...\n");
    let baseline = run(Mode::Baseline);
    let taichi = run(Mode::TaiChi);

    let fmt = |r: &RunReport| {
        format!(
            "packets {:>9}  dp-p99 {:>6.1} us  cp-mean {:>6.1} ms  yields {:>6}",
            r.dp.packets(),
            r.dp.total_latency().percentile(99.0) as f64 / 1e3,
            r.mean_cp_turnaround_ms(),
            r.yields,
        )
    };
    println!("baseline : {}", fmt(&baseline));
    println!("tai chi  : {}", fmt(&taichi));

    let speedup = baseline.mean_cp_turnaround_ms() / taichi.mean_cp_turnaround_ms();
    let dp_overhead = (taichi.dp.total_latency().mean() - baseline.dp.total_latency().mean())
        / baseline.dp.total_latency().mean();
    println!();
    println!("control-plane speedup : {speedup:.2}x");
    println!("data-plane overhead   : {:+.2}%", dp_overhead * 100.0);
    println!(
        "hw-probe preemptions  : {} (vCPUs evicted inside the 3.2 us I/O window)",
        taichi.hw_probe_exits
    );

    assert!(speedup > 1.2, "Tai Chi should speed up the control plane");
    assert!(dp_overhead < 0.05, "data-plane SLO must hold");
    println!("\nOK: control plane faster, data plane unharmed.");
}
