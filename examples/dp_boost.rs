//! Inverse adaptation (§8): boost the data plane in low-CP deployments.
//!
//! Tai Chi's machinery also works in reverse: hand half of the control
//! plane's physical CPUs to the data plane, and let the (now smaller)
//! CP keep its latency by harvesting idle DP cycles — more peak
//! throughput without starving management tasks.
//!
//! ```sh
//! cargo run --release --example dp_boost
//! ```

use taichi::core::machine::Mode;
use taichi::core::MachineConfig;
use taichi::hw::{IoKind, SmartNicSpec};
use taichi::sim::SimDuration;
use taichi::workloads::{measure_cfg, BenchTraffic};

fn peak_pps(spec: SmartNicSpec, mode: Mode) -> f64 {
    let cfg = MachineConfig {
        spec,
        seed: 0xD1CE,
        ..MachineConfig::default()
    };
    let traffic = BenchTraffic {
        kind: IoKind::Network,
        size_bytes: 256.0,
        utilization: 1.6,
        bursty: false,
        burst_intensity: 0.9,
    };
    measure_cfg(cfg, mode, &traffic, SimDuration::from_millis(200)).pps
}

fn main() {
    // `--trace` arms the TAICHI_TRACE override: every machine records a
    // scheduler trace and the workload runner dumps the last run per
    // mode under target/experiments/ (see README: scheduler tracing).
    if std::env::args().any(|a| a == "--trace") && std::env::var_os("TAICHI_TRACE").is_none() {
        std::env::set_var("TAICHI_TRACE", "");
    }
    println!("peak packet throughput at saturating offered load ...\n");
    let base = peak_pps(SmartNicSpec::default(), Mode::Baseline);
    println!("static 8 DP + 4 CP (baseline) : {base:>12.0} pps");
    let boosted = peak_pps(SmartNicSpec::with_split(12, 10), Mode::TaiChi);
    println!("tai chi 10 DP + 2 CP          : {boosted:>12.0} pps");
    let gain = (boosted - base) / base * 100.0;
    println!("\ndata-plane gain: {gain:+.1}%");
    println!(
        "the displaced control plane rides idle DP cycles, so its \
         latency stays at baseline (see `cargo run -p taichi-bench \
         --bin disc8_dp_boost` for the full table)."
    );
    assert!(gain > 15.0, "reallocated CPUs must raise peak throughput");
}
