//! VM startup storm: the paper's motivating workload (Figs. 2 & 17).
//!
//! A re-provisioning wave hits a high-density node: several VMs must
//! be created at once, each requiring per-device initialisation on the
//! SmartNIC control plane before QEMU may boot. Watch startup times
//! collapse when Tai Chi lets those device tasks harvest idle
//! data-plane cycles.
//!
//! ```sh
//! cargo run --release --example vm_startup_storm [density]
//! ```

use taichi::core::machine::{Machine, Mode};
use taichi::core::MachineConfig;
use taichi::cp::{TaskFactory, VmCreateRequest};
use taichi::dp::{ArrivalPattern, TrafficGen};
use taichi::hw::{CpuId, IoKind};
use taichi::sim::{Dist, SimDuration, SimTime};

fn run(mode: Mode, density: u32, vms: u32) -> Vec<f64> {
    // `--trace` records the scheduler's decisions and dumps them as a
    // TSV per mode (see README: scheduler tracing).
    let mut cfg = MachineConfig::default();
    cfg.trace.enabled = std::env::args().any(|a| a == "--trace");
    let mut machine = Machine::new(cfg, mode);
    machine.add_traffic(TrafficGen::new(
        ArrivalPattern::OnOff {
            on_us: Dist::constant(200.0),
            off_us: Dist::exponential(400.0),
            burst_gap_us: Dist::exponential(0.21),
        },
        Dist::constant(512.0),
        IoKind::Network,
        (0..8).map(CpuId).collect(),
    ));

    let factory = TaskFactory::default();
    for i in 0..vms {
        let mut req =
            VmCreateRequest::at_density(i as u64, density, SimTime::from_millis(i as u64 * 5));
        req.qemu_boot = SimDuration::from_millis(10);
        machine.schedule_vm_create(req, &factory);
    }

    let mut horizon = SimTime::from_secs(2);
    while (machine.vm_startup_times().len() as u32) < vms && horizon < SimTime::from_secs(60) {
        machine.run_until(horizon);
        horizon += SimDuration::from_secs(2);
    }
    if let Some(tsv) = machine.trace_tsv() {
        let path = format!("vm_startup_storm_{mode}.trace.tsv");
        match std::fs::write(&path, tsv) {
            Ok(()) => println!("[trace] {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
    machine
        .vm_startup_times()
        .iter()
        .map(|d| d.as_millis_f64())
        .collect()
}

fn main() {
    let density: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let vms = 4;
    println!(
        "creating {vms} VMs at {density}x instance density \
         ({} devices each) ...\n",
        VmCreateRequest::at_density(0, density, SimTime::ZERO).device_count()
    );

    for mode in [Mode::Baseline, Mode::TaiChi] {
        let times = run(mode, density, vms);
        assert_eq!(times.len() as u32, vms, "{mode}: all VMs must start");
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let worst = times.iter().cloned().fold(f64::MIN, f64::max);
        print!("{mode:<9}: ");
        for t in &times {
            print!("{t:>7.1} ms ");
        }
        println!("| mean {mean:.1} ms, worst {worst:.1} ms");
    }
    println!(
        "\nTai Chi turns the idle 70% of the data-plane CPUs into extra \
         control-plane capacity, so device initialisation — the gate in \
         front of QEMU — no longer queues behind 4 static CP cores."
    );
}
