//! Latency spikes and the hardware workload probe (Fig. 4 & Table 5).
//!
//! Demonstrates the paper's central data-plane safety claim: borrowing
//! idle DP cycles for control-plane vCPUs is only safe because the
//! accelerator's workload probe evicts the vCPU *inside* the 3.2 µs
//! I/O preprocessing window. Disable the probe and arriving packets
//! wait out the vCPU's time slice — the classic Fig. 4 latency spike.
//!
//! ```sh
//! cargo run --release --example latency_spike
//! ```

use taichi::core::machine::Mode;
use taichi::workloads::ping;

fn main() {
    // `--trace` arms the TAICHI_TRACE override: every machine records a
    // scheduler trace and the workload runner dumps the last run per
    // mode under target/experiments/ (see README: scheduler tracing).
    if std::env::args().any(|a| a == "--trace") && std::env::var_os("TAICHI_TRACE").is_none() {
        std::env::set_var("TAICHI_TRACE", "");
    }
    println!("ping through the SmartNIC under background traffic + CP churn ...\n");
    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>9}",
        "mechanism", "min (us)", "avg (us)", "max (us)", "mdev (us)"
    );
    let mut rows = Vec::new();
    for (name, mode) in [
        ("baseline", Mode::Baseline),
        ("tai chi", Mode::TaiChi),
        ("tai chi w/o probe", Mode::TaiChiNoHwProbe),
    ] {
        let r = ping::run(mode, 0xD1CE);
        println!(
            "{name:<22} {:>9.0} {:>9.0} {:>9.0} {:>9.0}",
            r.min_us, r.avg_us, r.max_us, r.mdev_us
        );
        rows.push((name, r));
    }

    let base_max = rows[0].1.max_us;
    let taichi_max = rows[1].1.max_us;
    let noprobe_max = rows[2].1.max_us;
    println!();
    println!(
        "with the probe, the worst echo is {:+.0}% vs baseline;",
        (taichi_max - base_max) / base_max * 100.0
    );
    println!(
        "without it, {:+.0}% — arriving packets sat behind vCPU slices.",
        (noprobe_max - base_max) / base_max * 100.0
    );
    assert!(
        noprobe_max > taichi_max * 1.5,
        "the ablation should show pronounced spikes"
    );
}
